package existdlog

import (
	"fmt"
	"sort"

	"existdlog/internal/adorn"
	"existdlog/internal/ast"
	"existdlog/internal/deletion"
	"existdlog/internal/grammar"
	"existdlog/internal/ierr"
	"existdlog/internal/magic"
	"existdlog/internal/trace"
	"existdlog/internal/uniform"
	"existdlog/internal/xform"
)

// DeletionMode selects the summary-based deletion test.
type DeletionMode = deletion.Mode

// Deletion modes (Section 5 of the paper).
const (
	// Lemma51 justifies a deletion by a single unit rule of the program.
	Lemma51 = deletion.Lemma51
	// Lemma53 justifies each derivation context by any element of the
	// closure of unit-rule projections (Algorithm 5.1); strictly stronger.
	Lemma53 = deletion.Lemma53
)

// Options selects the optimization phases. The zero value disables
// everything; DefaultOptions enables the full pipeline of the paper.
type Options struct {
	// Adorn runs the existential n/d adornment (Section 2). All later
	// phases require it (they accept pre-adorned programs if disabled).
	Adorn bool
	// ReduceInvariants applies the Example 12 transformation wherever it
	// is detected: an argument carried unchanged through a recursion and
	// consumed only by invariant base checks is projected out, the checks
	// moving into the exit rules (Section 6).
	ReduceInvariants bool
	// SplitComponents extracts disconnected existential subqueries into
	// boolean rules (Section 3.1); evaluate with EvalOptions.BooleanCut to
	// retire them at runtime.
	SplitComponents bool
	// PushProjections deletes existential argument positions (Lemma 3.2).
	PushProjections bool
	// AddUnitRules adds covering unit rules between adorned versions
	// (Section 5), feeding the deletion tests.
	AddUnitRules bool
	// DeleteRules runs the deletion driver (Algorithm 5.2 plus cleanup).
	DeleteRules bool
	// DeletionMode selects Lemma51 or Lemma53.
	DeletionMode DeletionMode
	// SagivTest additionally deletes rules redundant under plain uniform
	// equivalence (Example 4).
	SagivTest bool
	// Subsumption enables clause subsumption and query-projection
	// subsumption — the Section 6 open-question generalization of
	// Lemma 5.1 to non-unit rules, which deletes Example 9's redundant
	// rule without the Example 11 rewrite.
	Subsumption bool
	// LiteralDeletion removes body literals redundant under uniform
	// equivalence (Theorem 3.4's companion problem).
	LiteralDeletion bool
	// MagicSets finishes with the magic-sets rewriting when the query
	// binds constants — the orthogonal selection-pushing step of
	// Section 6.
	MagicSets bool
	// SupplementaryMagic uses the supplementary-predicate variant of the
	// magic rewriting (partial joins materialized once); implies
	// MagicSets-style placement at the end of the pipeline.
	SupplementaryMagic bool
}

// DefaultOptions enables the paper's full pipeline (without magic sets,
// which reshapes the program for bound queries and is opt-in).
func DefaultOptions() Options {
	return Options{
		Adorn:            true,
		ReduceInvariants: true,
		SplitComponents:  true,
		PushProjections:  true,
		AddUnitRules:     true,
		DeleteRules:      true,
		DeletionMode:     Lemma53,
		SagivTest:        true,
		Subsumption:      true,
		LiteralDeletion:  true,
	}
}

// Step records one phase's output for reporting.
type Step struct {
	Name    string
	Program string
	Notes   []string
}

// OptimizeResult is the outcome of Optimize.
type OptimizeResult struct {
	// Program is the optimized program; evaluate it with BooleanCut
	// enabled to benefit from the component split.
	Program *Program
	// Steps records each enabled phase's output.
	Steps []Step
	// Explain is the machine-readable stage-by-stage report: per stage, the
	// rule-count movement plus what the stage decided — adornments chosen,
	// boolean components split off, positions projected away, and which
	// check deleted which rule. Render it with Explain.Format or
	// Explain.JSON.
	Explain *trace.Explain
	// Deletions lists discarded rules with their justifications.
	Deletions []deletion.Deletion
	// EmptyAnswer is set when the optimizer proved the answer empty at
	// compile time (Example 8): no rules define the query predicate.
	EmptyAnswer bool
}

// Optimize runs the optimization pipeline of the paper over p, which is
// not mutated. The result's query goal is the adorned (and, if projection
// ran, projected) version of p's goal; Answers on an evaluation of the
// optimized program accepts it directly.
//
// Optimize never panics: any internal bug in the pipeline is recovered at
// this boundary into a stack-carrying *InternalError.
func Optimize(p *Program, opt Options) (res *OptimizeResult, err error) {
	defer ierr.Rescue(&err)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := &OptimizeResult{Explain: &trace.Explain{Input: p.String()}}
	cur := p.Clone()
	lastCount := len(cur.Rules)
	record := func(name string, notes ...string) {
		text := cur.String()
		out.Steps = append(out.Steps, Step{Name: name, Program: text, Notes: notes})
		out.Explain.Stages = append(out.Explain.Stages, trace.Stage{
			Name: name, RulesBefore: lastCount, RulesAfter: len(cur.Rules),
			Notes: notes, Program: text,
		})
		lastCount = len(cur.Rules)
	}
	last := func() *trace.Stage {
		return &out.Explain.Stages[len(out.Explain.Stages)-1]
	}

	if opt.Adorn {
		a, err := adorn.Adorn(cur)
		if err != nil {
			return nil, err
		}
		cur = a
		record("adorn")
		last().Adornments = adorn.AdornedKeys(cur)
	}
	if opt.ReduceInvariants {
		for {
			reds := xform.FindInvariantReductions(cur)
			if len(reds) == 0 {
				break
			}
			r := reds[0]
			t, err := xform.ReduceInvariantArgument(cur, r.Base, r.Pos)
			if err != nil {
				return nil, err
			}
			cur = t
			record("reduce-invariant",
				fmt.Sprintf("dropped position %d of %s (checks: %v)", r.Pos+1, r.Base, r.Checks))
		}
	}
	if opt.SplitComponents {
		before := derivedKeySet(cur)
		s, err := xform.SplitComponents(cur)
		if err != nil {
			return nil, err
		}
		cur = s
		record("split-components")
		last().Booleans = newDerivedKeys(cur, before)
	}
	if opt.PushProjections {
		plan := projectionPlan(cur)
		pp, err := xform.PushProjections(cur)
		if err != nil {
			return nil, err
		}
		cur = pp
		record("push-projections")
		last().Projections = plan
	}
	if opt.AddUnitRules {
		ext, added := xform.AddCoveringUnitRules(cur)
		cur = ext
		record("add-unit-rules", fmt.Sprintf("%d covering unit rules added", len(added)))
	}
	if opt.DeleteRules {
		var test func(*ast.Program, int) (bool, error)
		if opt.SagivTest {
			test = uniform.RuleRedundant
		}
		var litTest func(*ast.Program, int, int) (bool, error)
		if opt.LiteralDeletion {
			litTest = uniform.LiteralRedundant
		}
		trimmed, dels, err := deletion.DeleteRules(cur, deletion.Options{
			Mode:        opt.DeletionMode,
			UniformTest: test,
			LiteralTest: litTest,
			Subsumption: opt.Subsumption,
		})
		if err != nil {
			return nil, err
		}
		cur = trimmed
		out.Deletions = dels
		record("delete-rules", fmt.Sprintf("%d rules discarded", len(dels)))
		for _, d := range dels {
			last().Deletions = append(last().Deletions,
				trace.Deletion{Rule: d.Rule, Test: d.Test, Reason: d.Reason})
		}
	}
	if opt.MagicSets || opt.SupplementaryMagic {
		rewrite := magic.Rewrite
		name := "magic-sets"
		if opt.SupplementaryMagic {
			rewrite = magic.RewriteSupplementary
			name = "magic-sets-supplementary"
		}
		m, err := rewrite(cur)
		if err != nil {
			return nil, err
		}
		cur = m
		record(name)
	}
	if len(cur.RulesFor(cur.Query.Key())) == 0 && cur.IsDerived(cur.Query.Key()) {
		out.EmptyAnswer = true
	}
	out.Explain.EmptyAnswer = out.EmptyAnswer
	out.Program = cur
	return out, nil
}

// derivedKeySet snapshots p's derived predicate keys.
func derivedKeySet(p *ast.Program) map[string]bool {
	keys := make(map[string]bool, len(p.Derived))
	for k := range p.Derived {
		keys[k] = true
	}
	return keys
}

// newDerivedKeys lists p's derived keys absent from before, sorted — the
// boolean predicates the component split introduced.
func newDerivedKeys(p *ast.Program, before map[string]bool) []string {
	var fresh []string
	for k := range p.Derived {
		if !before[k] {
			fresh = append(fresh, k)
		}
	}
	sort.Strings(fresh)
	return fresh
}

// projectionPlan reads off what PushProjections will do to p: one entry
// per adorned derived predicate that still carries its full argument list
// and has existential ('d') positions to drop. Sorted by predicate key.
func projectionPlan(p *ast.Program) []trace.Projection {
	seen := map[string]bool{}
	var plan []trace.Projection
	note := func(a ast.Atom) {
		if a.Adornment == "" || !p.Derived[a.Key()] || len(a.Args) != len(a.Adornment) || seen[a.Key()] {
			return
		}
		seen[a.Key()] = true
		var dropped []int
		for i := range a.Adornment {
			if a.Adornment[i] == 'd' {
				dropped = append(dropped, i+1)
			}
		}
		if len(dropped) == 0 {
			return
		}
		plan = append(plan, trace.Projection{
			Predicate: a.Key(),
			Before:    len(a.Adornment),
			After:     len(a.Adornment) - len(dropped),
			Dropped:   dropped,
		})
	}
	for _, r := range p.Rules {
		note(r.Head)
		for _, b := range r.Body {
			note(b)
		}
	}
	note(p.Query)
	sort.Slice(plan, func(i, j int) bool { return plan[i].Predicate < plan[j].Predicate })
	return plan
}

// CountingRewrite exposes the counting method for the canonical linear
// recursion with a bound source (Section 6's orthogonal rewritings).
func CountingRewrite(p *Program) (*Program, error) { return magic.CountingRewrite(p) }

// MagicRewrite exposes the generalized magic-sets transformation.
func MagicRewrite(p *Program) (*Program, error) { return magic.Rewrite(p) }

// SupplementaryMagicRewrite exposes the supplementary-predicate variant of
// magic sets, which materializes each rule's partial joins once.
func SupplementaryMagicRewrite(p *Program) (*Program, error) {
	return magic.RewriteSupplementary(p)
}

// ChainQueryEquivalent decides query equivalence of two binary chain
// programs whose grammars are linear — the decidable fragment of
// Lemma 4.1(2). General chain-program query equivalence is undecidable
// (Lemma 4.2).
func ChainQueryEquivalent(p1, p2 *Program) (bool, error) {
	return grammar.ChainQueryEquivalent(p1, p2)
}

package existdlog

// One benchmark per experiment table of EXPERIMENTS.md (see DESIGN.md §4
// for the per-experiment index). Each benchmark prints its full table once
// — the same rows `existdlog bench` produces — and then times every
// variant × workload cell as a sub-benchmark, reporting derived facts and
// duplicate hits as custom metrics.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"existdlog/internal/engine"
	"existdlog/internal/experiments"
	"existdlog/internal/harness"
)

var tableOnce sync.Map // experiment ID -> *sync.Once

func printTableOnce(b *testing.B, e *experiments.Experiment) {
	onceI, _ := tableOnce.LoadOrStore(e.ID, &sync.Once{})
	onceI.(*sync.Once).Do(func() {
		rows, err := e.Run()
		if err != nil {
			b.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Fprintf(os.Stderr, "\n== %s: %s ==\nclaim: %s\n", e.ID, e.Title, e.Claim)
		harness.WriteTable(os.Stderr, rows)
		if len(e.Variants) >= 2 {
			fmt.Fprintln(os.Stderr, "speedups (first variant vs last):")
			fmt.Fprint(os.Stderr, harness.Speedup(rows, e.Variants[0].Name, e.Variants[len(e.Variants)-1].Name))
		}
	})
}

func benchExperiment(b *testing.B, ctor func() (*experiments.Experiment, error)) {
	e, err := ctor()
	if err != nil {
		b.Fatal(err)
	}
	printTableOnce(b, e)
	for _, wl := range e.Workloads {
		db := wl.Build()
		for _, v := range e.Variants {
			b.Run(wl.Name+"/"+v.Name, func(b *testing.B) {
				var stats engine.Stats
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := engine.Eval(v.Program, db, v.Opts)
					if err != nil {
						b.Fatal(err)
					}
					stats = res.Stats
				}
				b.ReportMetric(float64(stats.FactsDerived), "facts/op")
				b.ReportMetric(float64(stats.DuplicateHits), "dups/op")
			})
		}
	}
}

// E1 — Examples 1/3: projection pushing makes transitive closure unary.
func BenchmarkE1ProjectionTC(b *testing.B) { benchExperiment(b, experiments.E1) }

// E2 — Example 2: boolean subqueries and the runtime cut.
func BenchmarkE2BooleanCut(b *testing.B) { benchExperiment(b, experiments.E2) }

// E3 — Examples 5/6: rule deletion makes the query non-recursive.
func BenchmarkE3DeleteRecursion(b *testing.B) { benchExperiment(b, experiments.E3) }

// E4 — Example 7: summary-based deletion, 7 rules to 3.
func BenchmarkE4Example7(b *testing.B) { benchExperiment(b, experiments.E4) }

// E5 — Example 8: compile-time empty answer.
func BenchmarkE5Example8(b *testing.B) { benchExperiment(b, experiments.E5) }

// E6 — Example 10: Lemma 5.3 vs Lemma 5.1.
func BenchmarkE6Example10(b *testing.B) { benchExperiment(b, experiments.E6) }

// E7 — Examples 9/11: the rewrite that exposes a subsumed rule.
func BenchmarkE7Example11(b *testing.B) { benchExperiment(b, experiments.E7) }

// E8 — Example 12: invariant existential argument reduction.
func BenchmarkE8Example12(b *testing.B) { benchExperiment(b, experiments.E8) }

// E9 — magic-sets / projection composition (orthogonality).
func BenchmarkE9MagicComposition(b *testing.B) { benchExperiment(b, experiments.E9) }

// E10 — Theorem 3.3: binary chain program vs constructed monadic program.
func BenchmarkE10Monadic(b *testing.B) { benchExperiment(b, experiments.E10) }

// E11 — counting vs magic sets on bound same-generation.
func BenchmarkE11Counting(b *testing.B) { benchExperiment(b, experiments.E11) }

// E13 — pipeline ablation: each phase's contribution.
func BenchmarkE13Ablation(b *testing.B) { benchExperiment(b, experiments.E13) }

// E12 — the deletion capability matrix, timed as optimizer (compile-time)
// cost.
func BenchmarkE12CapabilityMatrix(b *testing.B) {
	onceI, _ := tableOnce.LoadOrStore("E12", &sync.Once{})
	onceI.(*sync.Once).Do(func() {
		rows, err := experiments.CapabilityMatrix()
		if err != nil {
			b.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "\n== E12: deletion capability matrix (rules remaining per test) ==\n")
		fmt.Fprint(os.Stderr, experiments.FormatCapabilityMatrix(rows))
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CapabilityMatrix(); err != nil {
			b.Fatal(err)
		}
	}
}

// Optimizer compile cost on the paper's running example.
func BenchmarkOptimizePipeline(b *testing.B) {
	prog := MustParseProgram(`
query(X) :- a(X,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- query(X).
`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(prog, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// Engine micro-benchmarks: the substrate costs the experiment tables rest
// on.
func BenchmarkEngineSemiNaiveTCChain512(b *testing.B) {
	prog := MustParseProgram(`
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	db := NewDatabase()
	for i := 0; i < 512; i++ {
		db.Add("p", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(prog, db, EvalOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineNaiveTCChain128(b *testing.B) {
	prog := MustParseProgram(`
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	db := NewDatabase()
	for i := 0; i < 128; i++ {
		db.Add("p", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(prog, db, EvalOptions{Strategy: Naive}); err != nil {
			b.Fatal(err)
		}
	}
}

// Sequential vs parallel semi-naive on multi-rule workloads. The parallel
// strategy fans the rule versions of each pass over GOMAXPROCS workers, so
// it needs several independent rule versions per pass to win; both
// workloads here provide that. Results and Stats are identical by
// construction (checked once per workload below); only wall-clock differs.
// On a single-core box the pair measures the coordination overhead instead
// of a speedup — run with GOMAXPROCS >= 4 to see the fan-out pay off.
func BenchmarkParallelSemiNaive(b *testing.B) {
	workloads := []struct {
		name string
		src  string
		db   func() *Database
	}{
		{
			// Eight independent transitive closures: 16 rules, up to 8
			// delta versions live in every pass.
			name: "tc8",
			src: func() string {
				s := ""
				for i := 0; i < 8; i++ {
					s += fmt.Sprintf("a%d(X,Y) :- p%d(X,Z), a%d(Z,Y).\na%d(X,Y) :- p%d(X,Y).\n", i, i, i, i, i)
				}
				return s + "?- a0(X,Y).\n"
			}(),
			db: func() *Database {
				db := NewDatabase()
				for i := 0; i < 8; i++ {
					for j := 0; j < 192; j++ {
						db.Add(fmt.Sprintf("p%d", i), fmt.Sprint(j), fmt.Sprint(j+1))
					}
				}
				return db
			},
		},
		{
			// Join-heavy: several wedge/triangle-style rules over one dense
			// random graph — few facts out, many probes per version, the
			// profile where per-version work dominates coordination.
			name: "tri",
			src: `w1(X,Z) :- g(X,Y), g(Y,Z).
w2(X,Z) :- g(X,Y), h(Y,Z).
w3(X,Z) :- h(X,Y), g(Y,Z).
t1(X) :- g(X,Y), g(Y,Z), g(Z,X).
t2(X) :- g(X,Y), h(Y,Z), g(Z,X).
t3(X) :- h(X,Y), h(Y,Z), h(Z,X).
r(X,Z) :- w1(X,Y), w2(Y,Z).
r(X,Z) :- r(X,Y), w3(Y,Z).
?- r(X,Y).
`,
			db: func() *Database {
				db := NewDatabase()
				rng := 1
				for i := 0; i < 900; i++ {
					rng = rng * 48271 % 2147483647
					a := rng % 60
					rng = rng * 48271 % 2147483647
					c := rng % 60
					db.Add("g", fmt.Sprint(a), fmt.Sprint(c))
					db.Add("h", fmt.Sprint(c), fmt.Sprint((a+c)%60))
				}
				return db
			},
		},
	}
	for _, wl := range workloads {
		prog := MustParseProgram(wl.src)
		db := wl.db()
		seq, err := Eval(prog, db, EvalOptions{})
		if err != nil {
			b.Fatal(err)
		}
		par, err := Eval(prog, db, EvalOptions{Strategy: Parallel})
		if err != nil {
			b.Fatal(err)
		}
		if seq.Stats != par.Stats {
			b.Fatalf("%s: parallel stats diverge: %+v vs %+v", wl.name, seq.Stats, par.Stats)
		}
		for _, cfg := range []struct {
			name string
			opts EvalOptions
		}{
			{"seminaive", EvalOptions{}},
			{"parallel", EvalOptions{Strategy: Parallel}},
		} {
			b.Run(wl.name+"/"+cfg.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Eval(prog, db, cfg.opts); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(seq.Stats.FactsDerived), "facts/op")
			})
		}
	}
}

func BenchmarkParse(b *testing.B) {
	src := `
query(X) :- a(X,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
b2 :- q3(U,V), q4(V).
?- query(X).
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseProgram(src); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: greedy join reordering on a badly ordered rule (engine-level
// optimization, independent of the paper's rewritings).
func BenchmarkJoinReorderAblation(b *testing.B) {
	prog := MustParseProgram(`
ans(X,W) :- big(Y,Z), sel(X,Y), big(Z,W).
?- ans(X,W).
`)
	db := NewDatabase()
	for i := 0; i < 2000; i++ {
		db.Add("big", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	db.Add("sel", "s", "3")
	for _, cfg := range []struct {
		name string
		opts EvalOptions
	}{
		{"textual-order", EvalOptions{}},
		{"reordered", EvalOptions{ReorderJoins: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Eval(prog, db, cfg.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: plain vs supplementary magic on the non-linear
// same-generation program (two derived calls share a prefix join).
func BenchmarkSupplementaryMagicAblation(b *testing.B) {
	src := `
sg(X,Y) :- up(X,U), sg(U,V), flat(V,W), sg(W,Z), dn(Z,Y).
sg(X,Y) :- flat(X,Y).
?- sg(t0a0, Y).
`
	prog := MustParseProgram(src)
	plain, err := MagicRewrite(prog)
	if err != nil {
		b.Fatal(err)
	}
	supp, err := SupplementaryMagicRewrite(prog)
	if err != nil {
		b.Fatal(err)
	}
	db := NewDatabase()
	for tw := 0; tw < 6; tw++ {
		for i := 0; i < 7; i++ {
			db.Add("up", fmt.Sprintf("t%da%d", tw, i), fmt.Sprintf("t%da%d", tw, i+1))
			db.Add("dn", fmt.Sprintf("t%db%d", tw, i+1), fmt.Sprintf("t%db%d", tw, i))
			db.Add("flat", fmt.Sprintf("t%da%d", tw, i), fmt.Sprintf("t%db%d", tw, i))
		}
		db.Add("flat", fmt.Sprintf("t%da7", tw), fmt.Sprintf("t%db7", tw))
	}
	for _, cfg := range []struct {
		name string
		p    *Program
	}{
		{"plain-magic", plain},
		{"supplementary", supp},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Eval(cfg.p, db, EvalOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Exact regular-equivalence decision cost (Lemma 4.1's decidable
// fragment).
func BenchmarkRegularEquivalence(b *testing.B) {
	p1 := MustParseProgram(`
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	p2 := MustParseProgram(`
a(X,Y) :- p(X,Z), p(Z,W), a(W,Y).
a(X,Y) :- p(X,Z), p(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := ChainQueryEquivalent(p1, p2)
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

// Incremental view maintenance: one added edge against recomputing the
// whole closure.
func BenchmarkIncrementalUpdate(b *testing.B) {
	prog := MustParseProgram(`
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	db := NewDatabase()
	for i := 0; i < 400; i++ {
		db.Add("p", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	base, err := Eval(prog, db, EvalOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full-reeval", func(b *testing.B) {
		db2 := db.Clone()
		db2.Add("p", "900", "901")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Eval(prog, db2, EvalOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		added := NewDatabase()
		added.Add("p", "900", "901")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Update(prog, base, added, EvalOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// DRed retraction of one edge vs recomputing the closure.
func BenchmarkIncrementalRetract(b *testing.B) {
	prog := MustParseProgram(`
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	db := NewDatabase()
	for i := 0; i < 400; i++ {
		db.Add("p", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	db.Add("p", "900", "901")
	base, err := Eval(prog, db, EvalOptions{})
	if err != nil {
		b.Fatal(err)
	}
	removed := NewDatabase()
	removed.Add("p", "900", "901") // disconnected edge: O(1) retraction
	b.Run("retract-disconnected", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Retract(prog, base, removed, EvalOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-reeval", func(b *testing.B) {
		db2 := db.Clone()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Eval(prog, db2, EvalOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

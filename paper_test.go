package existdlog

// paper_test.go is the executable index of the paper: one test per worked
// example and testable lemma/theorem, in the order they appear, each
// asserting exactly what the text claims. Detailed unit tests live in the
// internal packages; this file is the top-level fidelity record.

import (
	"fmt"
	"strings"
	"testing"

	"existdlog/internal/adorn"
	"existdlog/internal/deletion"
	"existdlog/internal/grammar"
	"existdlog/internal/uniform"
	"existdlog/internal/xform"
)

// §1.2 + Example 1: "we construct an adorned version of the program" —
// query(X) :- a(X,Y) marks a's second argument existential.
func TestPaperExample1Adornment(t *testing.T) {
	p := MustParseProgram(`
query(X) :- a(X,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- query(X).
`)
	ad, err := adorn.Adorn(p)
	if err != nil {
		t.Fatal(err)
	}
	want := `query@n(X) :- a@nd(X,Y).
a@nd(X,Y) :- p(X,Z), a@nd(Z,Y).
a@nd(X,Y) :- p(X,Y).
?- query@n(X).
`
	if ad.String() != want {
		t.Errorf("Example 1 adornment:\n%swant:\n%s", ad, want)
	}
}

// §3.1 + Example 2: the rule splits into the head component plus the
// boolean subqueries B2 (the q3/q4 component) and B3 (q5), with the
// severed existential head argument anonymized.
func TestPaperExample2ComponentSplit(t *testing.T) {
	p := MustParseProgram(`
p(X,U) :- q1(X,Y), q2(Y,Z), q3(U,V), q4(V), q5(W).
q4(X) :- q6(X).
?- p(X,_).
`)
	ad, err := adorn.Adorn(p)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := xform.SplitComponents(ad)
	if err != nil {
		t.Fatal(err)
	}
	booleans := 0
	for _, r := range sp.Rules {
		if r.Head.Arity() == 0 {
			booleans++
		}
		if r.Head.Pred == "p" && !r.Head.Args[1].IsAnon() {
			t.Errorf("severed head argument not anonymized: %s", r)
		}
	}
	if booleans != 2 {
		t.Errorf("expected the paper's B2 and B3, got %d boolean rules:\n%s", booleans, sp)
	}
	// Lemma 3.1: every rule now has a single connected component.
	for _, rep := range xform.CountComponents(sp) {
		if rep.Components != 1 {
			t.Errorf("Lemma 3.1 violated by %q", rep.Rule)
		}
	}
}

// §3.2 + Example 3: pushing the projection makes the recursive predicate
// unary — "the recursive predicate was unary whereas in the original
// program it was binary".
func TestPaperExample3Projection(t *testing.T) {
	p := MustParseProgram(`
query(X) :- a(X,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- query(X).
`)
	ad, _ := adorn.Adorn(p)
	pp, err := xform.PushProjections(ad)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range pp.Rules {
		if r.Head.Pred == "a" && r.Head.Arity() != 1 {
			t.Errorf("a should be unary after projection: %s", r)
		}
	}
}

// §3.3 + Examples 3a/4: the recursive rule of the projected program is
// redundant under uniform equivalence; with p1 in the exit rule it is not.
func TestPaperExample4UniformDeletion(t *testing.T) {
	p := MustParseProgram(`
a@nd(X) :- p(X,Z), a@nd(Z).
a@nd(X) :- p(X,Z).
?- a@nd(X).
`)
	ok, err := uniform.RuleRedundant(p, 0)
	if err != nil || !ok {
		t.Errorf("Example 4: recursive rule should be uniformly redundant (ok=%v err=%v)", ok, err)
	}
	caveat := MustParseProgram(`
a@nd(X) :- p(X,Z), a@nd(Z).
a@nd(X) :- p1(X,Z).
?- a@nd(X).
`)
	ok, err = uniform.RuleRedundant(caveat, 0)
	if err != nil || ok {
		t.Errorf("Example 3a caveat: deletion must be blocked (ok=%v err=%v)", ok, err)
	}
}

// §3.3 + Example 5: "No rule can be deleted from the adorned program
// without losing uniform equivalence."
func TestPaperExample5UniformStuck(t *testing.T) {
	p := MustParseProgram(`
a@nd(X) :- a@nn(X,Z), p(Z,Y).
a@nd(X) :- p(X,Y).
a@nn(X,Y) :- a@nn(X,Z), p(Z,Y).
a@nn(X,Y) :- p(X,Y).
?- a@nd(X).
`)
	for ri := range p.Rules {
		if ok, _ := uniform.RuleRedundant(p, ri); ok {
			t.Errorf("rule %d should not be uniformly redundant", ri+1)
		}
	}
}

// §4 + Example 6: under uniform query equivalence the program collapses
// to the single rule a@nd(X) :- p(X,Y).
func TestPaperExample6Collapse(t *testing.T) {
	p := MustParseProgram(`
a@nd(X) :- a@nn(X,Z), p(Z,Y).
a@nd(X) :- p(X,Y).
a@nn(X,Y) :- a@nn(X,Z), p(Z,Y).
a@nn(X,Y) :- p(X,Y).
?- a@nd(X).
`)
	withUnits, _ := xform.AddCoveringUnitRules(p)
	out, _, err := deletion.DeleteRules(withUnits, deletion.Options{
		Mode: deletion.Lemma53, UniformTest: uniform.RuleRedundant})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 1 || out.Rules[0].String() != "a@nd(X) :- p(X,Y)." {
		t.Errorf("Example 6 endpoint:\n%s", out)
	}
}

// §5 + Example 7 (reconstruction): Lemma 5.1 with the unit and trivial
// unit rules trims seven rules to the paper's three; the remaining unit
// rule is beyond the procedure, as the paper notes.
func TestPaperExample7Summaries(t *testing.T) {
	p := MustParseProgram(`
p@nd(X) :- p@nn(X,Y).
p@nd(X) :- p1@nn(X,Z), b4(Z).
p@nd(X) :- b1(X,Y).
p@nn(X,Y) :- p1@nn(X,Z), b4(Z), b1(Z,Y).
p@nn(X,Y) :- b5(X,Y).
p1@nn(X,Z) :- p@nn(X,U), b2(U,W,Z).
p1@nn(X,Z) :- p@nd(X), b3(U,W,Z).
?- p@nd(X).
`)
	out, _, err := deletion.DeleteRules(p, deletion.Options{Mode: deletion.Lemma51})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 3 {
		t.Errorf("Example 7 should leave 3 rules:\n%s", out)
	}
}

// §5 + Example 8 (reconstruction): "the set of answers is seen to be
// empty" at compile time.
func TestPaperExample8Empty(t *testing.T) {
	p := MustParseProgram(`
p@nd(X) :- p@nn(X,Y).
p@nn(X,Y) :- p1@nnn(X,Z,U), g1(Z,U,Y).
p@nn(X,Y) :- p1@nnn(X,Z,U), g1(U,Z,Y).
p1@nnn(X,Z,U) :- p1@nnn(X,V,W), g2(V,W,Z,U).
p1@nnn(X,Z,U) :- p@nn(X,Y), g2(Y,Y,Z,U).
?- p@nd(X).
`)
	out, _, err := deletion.DeleteRules(p, deletion.Options{Mode: deletion.Lemma51})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 0 {
		t.Errorf("Example 8 should empty the program:\n%s", out)
	}
}

// §5/§6 + Example 9: "our technique does not recognize this" — but the
// §6 subsumption generalization (implemented) does, without the
// Example 11 rewrite.
func TestPaperExample9Subsumption(t *testing.T) {
	p := MustParseProgram(`
p@nd(X) :- t@nn(X,Y), g3(Y,Z,U).
p@nd(X) :- s@nnn(X,Z,U), g1(Z,U,Y).
s@nnn(X,Z,U) :- t@nn(X,W), g2(W,Z,U).
s@nnn(X,Z,U) :- t@nn(X,V), g3(V,Z,U), g4(U,W).
t@nn(X,Y) :- b(X,Y).
?- p@nd(X).
`)
	// Summaries alone: no deletion (the paper's point).
	out, _, err := deletion.DeleteRules(p, deletion.Options{Mode: deletion.Lemma53})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != len(p.Rules) {
		t.Errorf("summary tests alone should not delete from Example 9:\n%s", out)
	}
	// With subsumption: the fourth rule goes.
	out, _, err = deletion.DeleteRules(p, deletion.Options{
		Mode: deletion.Lemma53, Subsumption: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != len(p.Rules)-1 {
		t.Errorf("subsumption should delete exactly the fourth rule:\n%s", out)
	}
}

// §5 + Example 10: Lemma 5.3 deletes the symmetric q-cycle; Lemma 5.1
// cannot.
func TestPaperExample10Lemma53(t *testing.T) {
	p := MustParseProgram(`
p@nd(X,Y) :- p@nn(X,Y).
p@nd(X,Y) :- p@nn(Y,X).
p@nn(X,Y) :- q@nn(X,Y).
p@nn(X,Y) :- q@nn(Y,X).
q@nn(X,Y) :- p@nn(X,Y).
p@nn(X,Y) :- b(X,Y).
?- p@nd(X,_).
`)
	l51, _, err := deletion.DeleteRules(p, deletion.Options{Mode: deletion.Lemma51})
	if err != nil {
		t.Fatal(err)
	}
	l53, _, err := deletion.DeleteRules(p, deletion.Options{Mode: deletion.Lemma53})
	if err != nil {
		t.Fatal(err)
	}
	if len(l51.Rules) != 6 || len(l53.Rules) != 3 {
		t.Errorf("Example 10: L5.1 leaves %d (want 6), L5.3 leaves %d (want 3)",
			len(l51.Rules), len(l53.Rules))
	}
}

// §5 + Example 11: after the (guessed) rewrite through q, even Lemma 5.1
// deletes the rewritten rule.
func TestPaperExample11Rewrite(t *testing.T) {
	p := MustParseProgram(`
p@nd(X) :- q@nnnn(X,Y,Z,U).
q@nnnn(X,Y,Z,U) :- t@nn(X,Y), g3(Y,Z,U).
p@nd(X) :- s@nnn(X,Z,U), g1(Z,U,Y).
s@nnn(X,Z,U) :- t@nn(X,W), g2(W,Z,U).
s@nnn(X,Z,U) :- q@nnnn(X,V,Z,U), g4(U,W).
t@nn(X,Y) :- b(X,Y).
?- p@nd(X).
`)
	out, dels, err := deletion.DeleteRules(p, deletion.Options{Mode: deletion.Lemma51})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != len(p.Rules)-1 {
		t.Errorf("Example 11: one deletion expected:\n%s\n%s", out, deletion.FormatDeletions(dels))
	}
}

// §6 + Example 12: the invariant-argument transformation reduces the
// recursive arity from 3 to 2, with the check moved into the exit rule.
func TestPaperExample12Transformation(t *testing.T) {
	prog := MustParseProgram(`
query(X,Y) :- p(X,Y,Z).
p(X,Y,Z) :- up(X,X1), p(X1,Y1,Z), dn(Y1,Y), c(Z).
p(X,Y,Z) :- b(X,Y,Z).
?- query(X,Y).
`)
	ad, _ := adorn.Adorn(prog)
	red, err := xform.ReduceInvariantArgument(ad, "p", 2)
	if err != nil {
		t.Fatal(err)
	}
	sawCheckInExit := false
	for _, r := range red.Rules {
		if strings.HasPrefix(r.Head.Pred, "p_r") {
			if r.Head.Arity() != 2 {
				t.Errorf("reduced predicate not binary: %s", r)
			}
			recursive := false
			hasCheck := false
			for _, b := range r.Body {
				if strings.HasPrefix(b.Pred, "p_r") {
					recursive = true
				}
				if b.Pred == "c" {
					hasCheck = true
				}
			}
			if !recursive && hasCheck {
				sawCheckInExit = true
			}
			if recursive && hasCheck {
				t.Errorf("check should have left the recursive rule: %s", r)
			}
		}
	}
	if !sawCheckInExit {
		t.Errorf("check c(Z) should appear in the exit rule:\n%s", red)
	}
}

// Lemma 4.1 + Lemma 4.2 context: query equivalence of chain programs is
// language equality (bounded check here; exact for the regular fragment);
// uniform equivalence is extended-language equality — and the two notions
// genuinely differ on left- vs right-linear TC.
func TestPaperLemma41(t *testing.T) {
	left := MustParseProgram(`
a(X,Y) :- a(X,Z), p(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	right := MustParseProgram(`
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	g1, _ := grammar.FromChainProgram(left)
	g2, _ := grammar.FromChainProgram(right)
	if !grammar.EqualUpTo(g1, g2, 6) {
		t.Error("Lemma 4.1(2): languages must agree (query equivalence)")
	}
	if grammar.ExtendedEqualUpTo(g1, g2, 4) {
		t.Error("Lemma 4.1(4): extended languages must differ")
	}
	if ue, _ := uniform.Equivalent(left, right); ue {
		t.Error("uniform equivalence must fail, matching the extended-language verdict")
	}
}

// Theorem 3.3, constructive half: the right-linear chain program has an
// equivalent monadic chain program for the existential query.
func TestPaperTheorem33(t *testing.T) {
	p := MustParseProgram(`
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	mp, err := grammar.MonadicFromChain(p, "dn")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range mp.Program.Rules {
		if r.Head.Arity() != 1 {
			t.Errorf("Theorem 3.3 construction must be monadic: %s", r)
		}
	}
	// The non-regular palindrome-ish language is rejected (the theorem's
	// undecidable direction is out of reach; linearity is the decidable
	// core).
	nonreg := MustParseProgram(`
a(X,Y) :- p(X,Z), a(Z,W), q(W,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	if _, err := grammar.MonadicFromChain(nonreg, "dn"); err == nil {
		t.Error("non-linear grammar must be rejected")
	}
}

// §2's floor claim, end to end: "The final program will perform at least
// as well as the original program, and ... often perform significantly
// better." Checked across the corpus by the corpus test; here the
// headline instance.
func TestPaperFloorClaim(t *testing.T) {
	prog := MustParseProgram(`
query(X) :- a(X,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- query(X).
`)
	res, err := Optimize(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	for i := 0; i < 300; i++ {
		db.Add("p", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	before, _ := Eval(prog, db, EvalOptions{})
	after, err := Eval(res.Program, db, EvalOptions{BooleanCut: true})
	if err != nil {
		t.Fatal(err)
	}
	if after.Stats.Derivations*10 > before.Stats.Derivations {
		t.Errorf("expected ≥10x fewer derivations, got %d vs %d",
			after.Stats.Derivations, before.Stats.Derivations)
	}
}

package existdlog

import (
	"context"
	"errors"
	"strconv"
	"testing"
	"time"
)

// TestArityMismatchSurfacedThroughFacade pins that a predicate used with
// two different arities comes back from the facade as a typed error —
// errors.Is(err, ErrArityMismatch) matches, and errors.As extracts the
// *ArityMismatchError with the offending key and both arities — rather
// than the panic the engine used to raise.
func TestArityMismatchSurfacedThroughFacade(t *testing.T) {
	_, _, err := Parse("p(a). p(a,b).")
	if err == nil {
		t.Fatal("Parse accepted p at two arities")
	}
	if !errors.Is(err, ErrArityMismatch) {
		t.Fatalf("error %v does not match ErrArityMismatch", err)
	}
	var am *ArityMismatchError
	if !errors.As(err, &am) {
		t.Fatalf("error %v is not an *ArityMismatchError", err)
	}
	if am.Key != "p" || am.Want == am.Have {
		t.Fatalf("unexpected mismatch details: %+v", am)
	}
}

// TestArityMismatchViaEval covers the other surfacing path: the program is
// consistent, but the caller's database disagrees with a rule body's
// arity. The evaluator must report the typed error, not panic.
func TestArityMismatchViaEval(t *testing.T) {
	p := MustParseProgram("q(X) :- e(X,Y). ?- q(X).")
	db := NewDatabase()
	db.Add("e", "a") // arity 1, the rule wants 2
	_, err := Eval(p, db, EvalOptions{})
	if err == nil {
		t.Fatal("Eval accepted database with wrong arity for e")
	}
	if !errors.Is(err, ErrArityMismatch) {
		t.Fatalf("error %v does not match ErrArityMismatch", err)
	}
}

// TestFacadeCancellationReturnsPartial is the end-to-end cancellation
// contract at the facade: a divergent query aborted by deadline comes back
// promptly with ErrDeadline and a non-nil partial result.
func TestFacadeCancellationReturnsPartial(t *testing.T) {
	p := MustParseProgram("n(X) :- z(X). n(Y) :- n(X), s(X,Y). ?- n(X).")
	db := NewDatabase()
	db.Add("z", "0")
	// A dense cyclic successor relation keeps the fixpoint busy long
	// enough for a short deadline to land mid-evaluation on any machine.
	names := make([]string, 400)
	for i := range names {
		names[i] = "c" + strconv.Itoa(i)
	}
	for i, a := range names {
		for j := 0; j < 8; j++ {
			db.Add("s", a, names[(i+j+1)%len(names)])
		}
	}
	db.Add("s", "0", names[0])
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	res, err := EvalContext(ctx, p, db, EvalOptions{})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("want non-nil partial result, got %+v", res)
	}
	if res.Incomplete == "" {
		t.Fatal("partial result lacks Incomplete reason")
	}
}

package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"syscall"
	"time"

	"existdlog/internal/obs"
	"existdlog/internal/server"
)

// cmdServe runs the long-running query service: a program is loaded
// once and HTTP clients evaluate goals against it (POST /query) or
// mutate its base facts (POST /update, POST /retract), with Prometheus
// metrics (/metrics), health and readiness probes (/healthz, /readyz),
// and the stdlib profiler (/debug/pprof). With -wal, acknowledged
// mutations are durable: they are replayed from the fsync'd log (and
// periodic checkpoints) on restart. Logs are structured JSON on stderr.
// SIGINT/SIGTERM drain gracefully: readiness flips to 503, in-flight
// queries get a grace period, stragglers are aborted into sound partial
// results, and a final metrics snapshot is logged.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8347", "listen address")
	noopt := fs.Bool("noopt", false, "serve the program as written (skip the optimizer)")
	parallel := fs.Bool("parallel", false, "evaluate queries with the parallel semi-naive strategy")
	noReorder := fs.Bool("no-reorder", false, "disable the runtime join planner (per-pass greedy reordering from live cardinalities)")
	timeout := fs.Duration("timeout", 10*time.Second, "default per-query evaluation timeout (0 = unbounded)")
	maxTimeout := fs.Duration("max-timeout", time.Minute, "cap on client-requested query timeouts (0 = no cap)")
	maxConcurrent := fs.Int("max-concurrent", runtime.GOMAXPROCS(0), "concurrently evaluating queries; excess requests queue")
	maxQueue := fs.Int("max-queue", 0, "per-class admission queue capacity; overflow is rejected with 429 (0 = 16x max-concurrent)")
	queueTimeout := fs.Duration("queue-timeout", time.Second, "max time a request may wait queued for an evaluation slot before 503")
	maxFacts := fs.Int("max-facts", 0, "per-query derived fact limit (0 = unlimited)")
	drainGrace := fs.Duration("drain", 5*time.Second, "shutdown grace before in-flight queries are aborted")
	walDir := fs.String("wal", "", "directory for the durable write-ahead log and checkpoints (empty = mutations are memory-only)")
	snapshotEvery := fs.Int("snapshot-every", 1024, "checkpoint the store after this many logged mutations (0 = never; needs -wal)")
	flightSize := fs.Int("flight-recorder", 1024, "completed requests kept in the /debug/requests ring buffer (0 = tracing off)")
	slowQuery := fs.Duration("slow-query", 0, "log a structured span breakdown for any request slower than this (0 = off)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("serve: expected one program file")
	}
	path := fs.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	srv, err := server.New(server.Config{
		Source:         string(src),
		Name:           path,
		NoOptimize:     *noopt,
		Parallel:       *parallel,
		NoReorder:      *noReorder,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxConcurrent:  *maxConcurrent,
		MaxQueue:       *maxQueue,
		QueueTimeout:   *queueTimeout,
		MaxFacts:       *maxFacts,
		Logger:         logger,
		WALDir:         *walDir,
		SnapshotEvery:  *snapshotEvery,
		FlightSize:     *flightSize,
		SlowQuery:      *slowQuery,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	srv.Registry().SetBuildInfo(buildVersion(), runtime.Version(), reportRev(""))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	rules, facts, goal := srv.Info()
	logger.LogAttrs(context.Background(), slog.LevelInfo, "serving",
		slog.String("program", path),
		slog.Int("rules", rules),
		slog.Int("facts", facts),
		slog.String("default_goal", goal),
		slog.String("addr", ln.Addr().String()),
		slog.Int("max_concurrent", *maxConcurrent),
		slog.String("wal", *walDir),
		slog.Uint64("seq", srv.Store().Current().Seq))

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	logger.LogAttrs(context.Background(), slog.LevelInfo, "shutdown signal, draining",
		slog.Duration("grace", *drainGrace))
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	if err := srv.Drain(drainCtx); err != nil {
		logger.LogAttrs(context.Background(), slog.LevelWarn, "drain grace expired, aborted in-flight queries",
			slog.String("error", err.Error()))
	}
	cancel()
	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.LogAttrs(context.Background(), slog.LevelWarn, "http shutdown",
			slog.String("error", err.Error()))
	}

	logFinalSnapshot(logger, srv.Registry().Snapshot())
	return nil
}

// buildVersion resolves the module version Go embedded at build time;
// source builds report "devel".
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// logFinalSnapshot flushes the lifetime metrics as one structured log
// line — the flight recorder's last word when the scrape endpoint goes
// away with the process.
func logFinalSnapshot(logger *slog.Logger, snap *obs.Snapshot) {
	logger.LogAttrs(context.Background(), slog.LevelInfo, "final metrics snapshot",
		slog.Int64("queries_total", snap.TotalQueries()),
		slog.Int64("queries_ok", snap.Queries[obs.OutcomeOK]),
		slog.Int64("queries_partial", snap.Queries[obs.OutcomePartial]),
		slog.Int64("queries_error", snap.Queries[obs.OutcomeError]),
		slog.Int64("facts_derived", snap.FactsDerived),
		slog.Int64("rule_firings", snap.RuleFirings),
		slog.Int64("derivations", snap.Derivations),
		slog.Int64("duplicate_hits", snap.DuplicateHits),
		slog.Int64("join_probes", snap.JoinProbes),
		slog.Int64("passes", snap.Iterations),
		slog.Int64("cache_hits", snap.CacheHits),
		slog.Int64("cache_misses", snap.CacheMisses),
		slog.Int64("updates_ok", snap.Mutations["update/ok"]),
		slog.Int64("retracts_ok", snap.Mutations["retract/ok"]),
		slog.Int64("wal_records", snap.WALRecords),
		slog.Int64("checkpoints", snap.Snapshots),
		slog.Duration("latency_p50", snap.Latency.QuantileDuration(0.50)),
		slog.Duration("latency_p95", snap.Latency.QuantileDuration(0.95)),
		slog.Duration("latency_p99", snap.Latency.QuantileDuration(0.99)),
		slog.Duration("uptime", time.Since(snap.Start)))
}

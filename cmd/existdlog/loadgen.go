package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"sync"
	"syscall"
	"time"

	"existdlog/internal/harness"
	"existdlog/internal/server"
	"existdlog/internal/tracespan"
	"existdlog/internal/workload"
)

// cmdLoadgen drives a served instance with open-loop traffic: the
// request schedule is generated up front (seeded Poisson arrivals over
// the scenario's rate periods, a cohort mix of point/recursive/boolean
// goals and update/retract mutations) and every request is dispatched
// at its scheduled offset whether or not earlier ones have completed —
// arrivals are paced by the clock, never by completions, so a slow
// server accumulates concurrent requests exactly the way real traffic
// would pile up. The run reports per-class p50/p95/p99, outcome counts
// that partition the issued total, pass/fail against the declared SLOs,
// and persists a schema-versioned BENCH_<scenario>.json so the perf
// trajectory is comparable across commits.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	scenario := fs.String("scenario", "steady", "committed scenario: "+strings.Join(workload.ScenarioNames(), ", "))
	url := fs.String("url", "http://127.0.0.1:8347", "base URL of the served instance to drive")
	seed := fs.Int64("seed", 1, "workload seed; identical seeds yield byte-identical schedules")
	duration := fs.Duration("duration", 0, "total run length, cycling the scenario's periods (0 = native periods)")
	rate := fs.Float64("rate", 0, "override every arrival period's rate in requests/sec (0 = scenario rates)")
	reqTimeout := fs.Duration("request-timeout", 10*time.Second, "per-request server-side timeout")
	sloSpec := fs.String("slo", "", "objectives like p99=50ms,errors=0 (enforced: violations exit non-zero); empty uses the scenario's defaults, advisory only")
	out := fs.String("out", "", `report file (default BENCH_<scenario>.json; "-" writes no file)`)
	record := fs.String("record", "", "record the generated trace to this file for later -trace replay")
	traceFile := fs.String("trace", "", "replay a recorded trace instead of generating one")
	dry := fs.Bool("dry", false, "generate (and -record) the schedule without driving a server")
	emit := fs.Bool("emit-program", false, "print the scenario's served program and exit")
	check := fs.String("check", "", "validate a BENCH_*.json report against the schema and exit")
	rev := fs.String("rev", "", "git revision stamped into the report (default: embedded build info)")
	fs.Parse(args)

	if *check != "" {
		return checkReport(*check)
	}

	var sc workload.Scenario
	if *traceFile == "" || *emit {
		var ok bool
		sc, ok = workload.Scenarios[*scenario]
		if !ok {
			return fmt.Errorf("loadgen: unknown scenario %q (have: %s)", *scenario, strings.Join(workload.ScenarioNames(), ", "))
		}
	}
	if *emit {
		fmt.Print(sc.Program())
		return nil
	}

	var tr *workload.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		tr, err = workload.ReadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		tr = sc.Generate(*seed, *duration, *rate)
	}
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			return err
		}
		err = workload.WriteTrace(f, tr)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("recorded %d requests (digest %s) to %s\n", len(tr.Requests), tr.Digest(), *record)
	}
	if *dry {
		fmt.Printf("dry run: %d requests over %s, digest %s\n", len(tr.Requests), tr.Duration(), tr.Digest())
		return nil
	}

	// The enforced/advisory split: an explicit -slo is a contract (a
	// violation fails the process), a scenario default is a report line.
	enforced := *sloSpec != ""
	spec := *sloSpec
	if spec == "" {
		if s, ok := workload.Scenarios[tr.Scenario]; ok {
			spec = s.SLO
		}
	}
	slo, err := harness.ParseSLO(spec)
	if err != nil {
		return err
	}

	client := server.NewClient(*url)
	if err := probeServer(client.Base); err != nil {
		return fmt.Errorf("loadgen: no served instance at %s (start one with: existdlog loadgen -scenario %s -emit-program > /tmp/lg.dl && existdlog serve /tmp/lg.dl): %w",
			client.Base, tr.Scenario, err)
	}

	// Ctrl-C stops dispatching and aborts in-flight requests through the
	// same context the server's cancellation plumbing honors; whatever
	// was measured still reports, with the remainder counted as skipped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("driving %s with %d requests over %s (scenario %s, seed %d)\n",
		client.Base, len(tr.Requests), tr.Duration(), tr.Scenario, tr.Seed)
	samples, elapsed := runTrace(ctx, client, tr, workload.RealClock{}, *reqTimeout)

	rep := harness.BuildLoadReport(tr, samples, elapsed, reportRev(*rev), time.Now(), slo)
	resolveExemplars(client, rep)
	harness.WriteLoadTable(os.Stdout, rep)

	if *out != "-" {
		path := *out
		if path == "" {
			path = "BENCH_" + tr.Scenario + ".json"
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = harness.WriteLoadJSON(f, rep)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", path)
	}
	if enforced && !harness.SLOPassed(rep.SLO) {
		return fmt.Errorf("loadgen: SLO violated")
	}
	return nil
}

// runTrace executes a trace against a served instance, open loop: a
// dispatcher goroutine sleeps until each request's offset and hands it
// to a fresh goroutine, so in-flight requests never delay the next
// arrival. Samples land at the request's own index (no shared append),
// which keeps the hot path race-free by construction. A cancelled
// context stops dispatching (the rest are marked skipped) and tears
// down in-flight requests via the client's context plumbing.
func runTrace(ctx context.Context, client *server.Client, tr *workload.Trace, clock workload.Clock, reqTimeout time.Duration) ([]harness.LoadSample, time.Duration) {
	samples := make([]harness.LoadSample, len(tr.Requests))
	start := clock.Now()
	var wg sync.WaitGroup
	cancelled := false
	for i, req := range tr.Requests {
		if !cancelled && !waitUntil(ctx, clock, start, req.Offset) {
			cancelled = true
		}
		if cancelled {
			samples[i] = harness.LoadSample{Class: req.Class, Outcome: "skipped"}
			continue
		}
		wg.Add(1)
		go func(i int, req workload.Request) {
			defer wg.Done()
			// Pin a deterministic trace id so the sample can be joined to
			// the server's flight recorder (and to a replayed run's
			// samples) after the fact.
			tid := tracespan.TraceID(tr.TraceIDFor(i))
			rctx := tracespan.ContextWithTrace(ctx, tid)
			t0 := clock.Now()
			var outcome string
			if req.Class.Mutation() {
				res, err := client.Mutate(rctx, string(req.Class), req.Facts, reqTimeout)
				switch {
				case err == nil && rejectedStatus(res.Status):
					outcome = "rejected"
				case err != nil || res.Status != http.StatusOK:
					outcome = "error"
				default:
					outcome = "ok"
				}
			} else {
				res, err := client.Query(rctx, req.Goal, reqTimeout)
				switch {
				case err == nil && rejectedStatus(res.Status):
					outcome = "rejected"
				case err != nil || res.Status != http.StatusOK:
					outcome = "error"
				case res.Partial:
					outcome = "partial"
				default:
					outcome = "ok"
				}
			}
			samples[i] = harness.LoadSample{Class: req.Class, Latency: clock.Now().Sub(t0), Outcome: outcome, TraceID: tid.String()}
		}(i, req)
	}
	wg.Wait()
	return samples, clock.Now().Sub(start)
}

// waitUntil sleeps (in short slices, so cancellation stays responsive)
// until offset past start; it reports false once ctx is cancelled.
func waitUntil(ctx context.Context, clock workload.Clock, start time.Time, offset time.Duration) bool {
	for {
		select {
		case <-ctx.Done():
			return false
		default:
		}
		wait := offset - clock.Now().Sub(start)
		if wait <= 0 {
			return true
		}
		if wait > 100*time.Millisecond {
			wait = 100 * time.Millisecond
		}
		clock.Sleep(wait)
	}
}

// resolveExemplars fills each report exemplar's span tree from the
// served instance's flight recorder, joining on the deterministic trace
// ids the runner pinned. Best-effort by design: a disabled recorder
// (404) or an already-evicted entry leaves Trace nil, and the report is
// still valid — the trace id alone is enough to grep server logs.
// It uses a fresh context so a Ctrl-C'd run still resolves what it can.
func resolveExemplars(client *server.Client, rep *harness.LoadReport) {
	if len(rep.Exemplars) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reqs, err := client.DebugRequests(ctx, 0)
	if err != nil {
		fmt.Printf("flight recorder unavailable (%v); exemplar span trees omitted\n", err)
		return
	}
	byTrace := map[string]*tracespan.Request{}
	for _, r := range reqs {
		// The snapshot is newest-first; for a retried mutation the newest
		// server-side entry is the attempt that finally succeeded.
		if _, ok := byTrace[r.TraceID]; !ok {
			byTrace[r.TraceID] = r
		}
	}
	resolved := 0
	for i := range rep.Exemplars {
		ex := &rep.Exemplars[i]
		if r, ok := byTrace[ex.TraceID]; ok {
			ex.Trace = r
			ex.StageCoverage = r.StageCoverage()
			resolved++
		}
	}
	fmt.Printf("resolved %d/%d exemplar span trees from /debug/requests\n", resolved, len(rep.Exemplars))
}

// rejectedStatus reports whether a response means the server refused
// the request before evaluation — admission control (429 queue full,
// 503 queue timeout/shed), draining, or degraded mode. These count as
// "rejected", not "error": under deliberate overload a rejection is
// the server doing its job.
func rejectedStatus(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// probeServer checks the target is alive before the schedule starts, so
// a missing server is one clear error instead of a report full of
// connection refusals.
func probeServer(base string) error {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %s", resp.Status)
	}
	return nil
}

// checkReport validates a persisted BENCH_*.json against the schema.
func checkReport(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rep, err := harness.ReadLoadReport(f)
	if err != nil {
		return fmt.Errorf("loadgen: %s: %w", path, err)
	}
	embedded := 0
	for _, ex := range rep.Exemplars {
		if ex.Trace != nil {
			embedded++
		}
	}
	fmt.Printf("%s: valid %s report (scenario %s, %d scheduled, %d issued, digest %s)\n",
		path, rep.Schema, rep.Scenario, rep.Schedule.Requests, rep.Results.Issued, rep.Schedule.Digest)
	if len(rep.Exemplars) > 0 {
		fmt.Printf("%s: %d exemplars, %d with validated span trees\n", path, len(rep.Exemplars), embedded)
	}
	return nil
}

// reportRev resolves the revision stamped into reports: the -rev flag,
// else the VCS revision Go embedded at build time, else "unknown".
func reportRev(flagRev string) string {
	if flagRev != "" {
		return flagRev
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				if len(s.Value) > 12 {
					return s.Value[:12]
				}
				return s.Value
			}
		}
	}
	return "unknown"
}

package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden byte-match tests for the observability surfaces: the optimizer
// EXPLAIN report (`existdlog explain file.dl`) and an evaluation with the
// report and metrics attached (`existdlog run -explain -trace file.dl`)
// must be byte-stable across runs and changes. Regenerate after an
// intentional output change with:
//
//	go test ./cmd/existdlog -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenCompare diffs got against the named golden file, rewriting it
// under -update.
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s\n-- got --\n%s\n-- want --\n%s", path, got, want)
	}
}

// goldenPrograms lists the testdata programs the golden layer covers.
func goldenPrograms(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "*.dl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	return files
}

func TestGoldenExplain(t *testing.T) {
	for _, file := range goldenPrograms(t) {
		name := strings.TrimSuffix(filepath.Base(file), ".dl")
		t.Run(name, func(t *testing.T) {
			out := capture(t, func() error { return cmdExplain([]string{file}) })
			goldenCompare(t, name+".explain.golden", out)
		})
	}
}

func TestGoldenExplainJSON(t *testing.T) {
	// One representative program keeps the JSON fixture small; the shape is
	// the same for all inputs.
	out := capture(t, func() error { return cmdExplain([]string{"-json", "testdata/example1.dl"}) })
	goldenCompare(t, "example1.explain.json.golden", out)
}

func TestGoldenRunExplainTrace(t *testing.T) {
	for _, file := range goldenPrograms(t) {
		name := strings.TrimSuffix(filepath.Base(file), ".dl")
		t.Run(name, func(t *testing.T) {
			out := capture(t, func() error { return cmdRun([]string{"-explain", "-trace", file}) })
			goldenCompare(t, name+".run-explain.golden", out)
		})
	}
}

// TestGoldenExplainPlan pins the join-planner EXPLAIN section: the
// startup-pass order per rule with the live EDB cardinalities that
// justified it. Cardinalities of committed fixtures are fixed, so the
// section is byte-stable.
func TestGoldenExplainPlan(t *testing.T) {
	for _, file := range goldenPrograms(t) {
		name := strings.TrimSuffix(filepath.Base(file), ".dl")
		t.Run(name, func(t *testing.T) {
			out := capture(t, func() error { return cmdExplain([]string{"-plan", file}) })
			goldenCompare(t, name+".explain-plan.golden", out)
		})
	}
}

// TestGoldenRunReorderTrace runs the planner end to end with tracing:
// the per-pass `plan rN#occ: ...` lines must be byte-stable — replanning
// is deterministic even as orders shift with the deltas.
func TestGoldenRunReorderTrace(t *testing.T) {
	for _, file := range goldenPrograms(t) {
		name := strings.TrimSuffix(filepath.Base(file), ".dl")
		t.Run(name, func(t *testing.T) {
			out := capture(t, func() error { return cmdRun([]string{"-reorder", "-explain", "-trace", file}) })
			goldenCompare(t, name+".run-reorder.golden", out)
		})
	}
}

func TestGoldenWhy(t *testing.T) {
	out := capture(t, func() error { return cmdWhy([]string{"testdata/example1.dl", "a(1,3)"}) })
	goldenCompare(t, "example1.why.golden", out)
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"existdlog/internal/harness"
)

// TestReplStats drives a session through queries (including a failing
// one) and checks the :stats command reports the cumulative registry.
func TestReplStats(t *testing.T) {
	var out strings.Builder
	sess := &replSession{out: &out, optimize: true}
	script := []string{
		"a(X,Y) :- p(X,Z), a(Z,Y).",
		"a(X,Y) :- p(X,Y).",
		"p(1,2). p(2,3).",
		"?- a(1,X).",
		"?- a(X,Y).",
	}
	for _, line := range script {
		if err := sess.handle(line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	// A malformed query counts toward the error outcome.
	if err := sess.handle("?- a(X,"); err == nil {
		t.Fatal("malformed query did not error")
	}
	out.Reset()
	if err := sess.handle(":stats"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"queries: 3 (ok 2, partial 0, error 1)",
		"latency: p50",
		"rule firings:",
		"a@nn(X,Y) :- p(X,Y).", // per-rule series carry the evaluated rule text
	} {
		if !strings.Contains(got, want) {
			t.Errorf(":stats output missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "facts derived: ") {
		t.Errorf(":stats output missing the facts counter:\n%s", got)
	}
	out.Reset()
	if err := sess.handle(":stats"); err != nil {
		t.Fatal(err)
	}
	if out.String() != got {
		t.Errorf(":stats is not idempotent:\n%s\nvs\n%s", got, out.String())
	}
}

// TestCmdBenchRepeatJSON runs one experiment with repetition and checks
// the table gains quantile columns and the recorded JSON parses back
// into rows with quantiles.
func TestCmdBenchRepeatJSON(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_E1.json")
	out := capture(t, func() error {
		return cmdBench([]string{"-only", "E1", "-repeat", "3", "-json", jsonPath})
	})
	for _, want := range []string{"p50", "p95", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("bench table missing %q column:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rows []harness.Row
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatalf("recorded JSON does not parse: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows recorded")
	}
	for _, r := range rows {
		if r.Repeats != 3 {
			t.Errorf("row %s/%s/%s: repeats = %d, want 3", r.Experiment, r.Workload, r.Variant, r.Repeats)
		}
		if r.P50 <= 0 || r.P99 < r.P50 {
			t.Errorf("row %s/%s/%s: bad quantiles p50=%v p99=%v", r.Experiment, r.Workload, r.Variant, r.P50, r.P99)
		}
	}
}

// Command existdlog is the command-line front end to the existential
// Datalog optimizer:
//
//	existdlog optimize [-mode 51|53] [-magic] file.dl   step-by-step optimization report
//	existdlog adorn file.dl                             print the adorned program
//	existdlog run [-noopt] [-nocut] [-naive] [-parallel] [-timeout 1s] file.dl  evaluate and print answers + stats
//	existdlog explain file.dl 'a@nd(1)'                 print a derivation tree
//	existdlog grammar file.dl                           chain-program/grammar analysis
//	existdlog equiv left.dl right.dl                    Section 4 equivalence report
//	existdlog bench                                     run the experiment suite tables
//
// Program files contain rules, ground facts, and one "?- goal." query in
// the syntax of the parser package (p@nd writes the paper's p^nd).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"existdlog"
	"existdlog/internal/adorn"
	"existdlog/internal/grammar"
	"existdlog/internal/parser"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "optimize":
		err = cmdOptimize(os.Args[2:])
	case "adorn":
		err = cmdAdorn(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "grammar":
		err = cmdGrammar(os.Args[2:])
	case "equiv":
		err = cmdEquiv(os.Args[2:])
	case "repl":
		err = cmdRepl(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "existdlog:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: existdlog <command> [flags] [file]

commands:
  optimize   print the optimization pipeline report for a program
  adorn      print the existentially adorned program
  run        evaluate a program over its facts and print the answers
  explain    print the derivation tree of one answer
  grammar    analyze a binary chain program as a grammar
  equiv      compare two programs under the paper's equivalences
  repl       interactive session (rules, facts, and ?- queries)
  bench      run the experiment suite and print its tables
`)
}

func load(path string) (*existdlog.Program, *existdlog.Database, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return existdlog.Parse(string(src))
}

func cmdOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	mode := fs.String("mode", "53", "summary deletion mode: 51 or 53")
	magicFlag := fs.Bool("magic", false, "finish with the magic-sets rewriting")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("optimize: expected one program file")
	}
	prog, _, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	opts := existdlog.DefaultOptions()
	if *mode == "51" {
		opts.DeletionMode = existdlog.Lemma51
	}
	opts.MagicSets = *magicFlag
	res, err := existdlog.Optimize(prog, opts)
	if err != nil {
		return err
	}
	fmt.Println("== input ==")
	fmt.Print(prog.String())
	for _, s := range res.Steps {
		fmt.Printf("\n== after %s ==\n", s.Name)
		for _, n := range s.Notes {
			fmt.Printf("%% %s\n", n)
		}
		fmt.Print(s.Program)
	}
	if len(res.Deletions) > 0 {
		fmt.Println("\n== deletions ==")
		for _, d := range res.Deletions {
			fmt.Printf("- %s\n    %s\n", d.Rule, d.Reason)
		}
	}
	if res.EmptyAnswer {
		fmt.Println("\n== the answer is empty (proved at compile time) ==")
	}
	return nil
}

func cmdAdorn(args []string) error {
	fs := flag.NewFlagSet("adorn", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("adorn: expected one program file")
	}
	prog, _, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	ad, err := adorn.Adorn(prog)
	if err != nil {
		return err
	}
	fmt.Print(ad.String())
	return nil
}

// relFlags accumulates repeated -rel name=path.csv flags.
type relFlags []string

func (r *relFlags) String() string     { return strings.Join(*r, ",") }
func (r *relFlags) Set(v string) error { *r = append(*r, v); return nil }

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	noopt := fs.Bool("noopt", false, "evaluate the program as written")
	nocut := fs.Bool("nocut", false, "disable the runtime boolean cut")
	naive := fs.Bool("naive", false, "use naive instead of semi-naive evaluation")
	parallel := fs.Bool("parallel", false, "parallel semi-naive evaluation (same answers and stats, GOMAXPROCS workers)")
	reorder := fs.Bool("reorder", false, "greedy bound-first join reordering")
	maxAnswers := fs.Int("max", 50, "print at most this many answers (0 = all)")
	timeout := fs.Duration("timeout", 0, "abort evaluation after this long, printing the partial result (0 = no limit)")
	var rels relFlags
	fs.Var(&rels, "rel", "load a relation from CSV: -rel name=path.csv (repeatable)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("run: expected one program file")
	}
	prog, db, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	for _, spec := range rels {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("run: -rel wants name=path.csv, got %q", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		n, err := db.LoadCSV(name, f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("%% loaded %d rows into %s from %s\n", n, name, path)
	}
	if prog.Query.Pred == "" {
		return fmt.Errorf("run: the program has no ?- query")
	}
	goal := prog.Query
	if !*noopt {
		res, err := existdlog.Optimize(prog, existdlog.DefaultOptions())
		if err != nil {
			return err
		}
		prog = res.Program
		goal = prog.Query
		if res.EmptyAnswer {
			fmt.Println("answer proved empty at compile time")
			return nil
		}
	}
	opts := existdlog.EvalOptions{BooleanCut: !*nocut, ReorderJoins: *reorder}
	if *naive && *parallel {
		return fmt.Errorf("run: -naive and -parallel are mutually exclusive")
	}
	if *naive {
		opts.Strategy = existdlog.Naive
	}
	if *parallel {
		opts.Strategy = existdlog.Parallel
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := existdlog.EvalContext(ctx, prog, db, opts)
	if err != nil && (res == nil || !res.Partial) {
		return err
	}
	answers := res.Answers(goal)
	for i, row := range answers {
		if *maxAnswers > 0 && i >= *maxAnswers {
			fmt.Printf("... and %d more\n", len(answers)-i)
			break
		}
		fmt.Printf("%s(%s)\n", goal.Key(), strings.Join(row, ","))
	}
	if err != nil {
		// Graceful degradation: a timed-out (or limit-hit) query prints
		// whatever was soundly derived, marked as partial, and exits 0.
		fmt.Printf("%%%% partial result (%s)\n", res.Incomplete)
	}
	s := res.Stats
	fmt.Printf("%% %d answers; %d facts derived in %d iterations; %d derivations (%d duplicates); %d join probes; %d rules retired\n",
		len(answers), s.FactsDerived, s.Iterations, s.Derivations, s.DuplicateHits, s.JoinProbes, s.RulesRetired)
	return nil
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("explain: expected a program file and a ground goal like 'a(1,2)'")
	}
	prog, db, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	goalRes, err := parser.Parse("?- " + fs.Arg(1) + ".")
	if err != nil {
		return fmt.Errorf("explain: bad goal: %w", err)
	}
	goal := goalRes.Program.Query
	if !goal.IsGround() {
		return fmt.Errorf("explain: goal must be ground")
	}
	res, err := existdlog.Eval(prog, db, existdlog.EvalOptions{TrackProvenance: true})
	if err != nil {
		return err
	}
	row := make([]string, len(goal.Args))
	for i, t := range goal.Args {
		row[i] = t.Name
	}
	tree, ok := res.Derivation(goal.Key(), row)
	if !ok {
		fmt.Printf("%s is not derivable\n", fs.Arg(1))
		return nil
	}
	printTree(tree, prog, res, 0)
	return nil
}

func printTree(t *existdlog.Tree, prog *existdlog.Program, res *existdlog.EvalResult, depth int) {
	indent := strings.Repeat("  ", depth)
	label := t.Fact.Key
	if len(t.Fact.Row) > 0 {
		label = fmt.Sprintf("%s(%s)", t.Fact.Key, strings.Join(res.RowStrings(t.Fact.Row), ","))
	}
	if t.Rule >= 0 && t.Rule < len(prog.Rules) {
		fmt.Printf("%s%s   [rule %d: %s]\n", indent, label, t.Rule+1, prog.Rules[t.Rule])
	} else {
		fmt.Printf("%s%s   [base fact]\n", indent, label)
	}
	for _, c := range t.Children {
		printTree(c, prog, res, depth+1)
	}
}

func cmdGrammar(args []string) error {
	fs := flag.NewFlagSet("grammar", flag.ExitOnError)
	maxLen := fs.Int("len", 5, "enumerate languages up to this length")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("grammar: expected one program file")
	}
	prog, _, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	g, err := grammar.FromChainProgram(prog)
	if err != nil {
		return err
	}
	fmt.Printf("start symbol: %s\n", g.Start)
	fmt.Printf("classification: %v\n", classString(grammar.Classify(g)))
	fmt.Printf("L(G) up to length %d:\n", *maxLen)
	for _, s := range g.Language(*maxLen) {
		fmt.Printf("  %s\n", strings.Join(s, " "))
	}
	fmt.Printf("extended language up to length %d:\n", *maxLen)
	for _, s := range g.ExtendedLanguage(*maxLen) {
		fmt.Printf("  %s\n", strings.Join(s, " "))
	}
	for _, ad := range []existdlog.Adornment{"dn", "nd"} {
		mp, err := grammar.MonadicFromChain(prog, ad)
		if err != nil {
			fmt.Printf("monadic construction (%s): %v\n", ad, err)
			continue
		}
		fmt.Printf("monadic program for query %s@%s (Theorem 3.3):\n", g.Start, ad)
		fmt.Print(indentLines(mp.Program.String(), "  "))
	}
	return nil
}

func classString(c grammar.Linearity) string {
	switch c {
	case grammar.RightLinear:
		return "right-linear (regular)"
	case grammar.LeftLinear:
		return "left-linear (regular)"
	case grammar.Acyclic:
		return "acyclic (trivially regular)"
	default:
		return "not linear (regularity undecidable)"
	}
}

func indentLines(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

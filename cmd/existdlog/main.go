// Command existdlog is the command-line front end to the existential
// Datalog optimizer:
//
//	existdlog optimize [-mode 51|53] [-magic] file.dl   step-by-step optimization report
//	existdlog adorn file.dl                             print the adorned program
//	existdlog run [-noopt] [-nocut] [-naive] [-parallel] [-reorder] [-explain] [-trace] [-timeout 1s] file.dl  evaluate and print answers + stats
//	existdlog explain [-json] [-plan] file.dl           optimizer EXPLAIN: what each stage decided
//	existdlog why file.dl 'a@nd(1)'                     print one answer's derivation tree
//	existdlog grammar file.dl                           chain-program/grammar analysis
//	existdlog equiv left.dl right.dl                    Section 4 equivalence report
//	existdlog bench [-repeat n] [-json f] [-cpuprofile f] [-memprofile f]  run the experiment suite tables
//	existdlog serve [-addr host:port] [-timeout 10s] [-wal dir] file.dl  HTTP query service with metrics and health probes
//	existdlog loadgen [-scenario s] [-seed n] [-duration 5s] [-slo p99=50ms,errors=0]  open-loop traffic + SLO harness against a served instance
//	existdlog repl [-server URL] [file.dl...]           interactive session; :add/:retract mutate a served instance
//
// Program files contain rules, ground facts, and one "?- goal." query in
// the syntax of the parser package (p@nd writes the paper's p^nd).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"existdlog"
	"existdlog/internal/adorn"
	"existdlog/internal/grammar"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "optimize":
		err = cmdOptimize(os.Args[2:])
	case "adorn":
		err = cmdAdorn(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "why":
		err = cmdWhy(os.Args[2:])
	case "grammar":
		err = cmdGrammar(os.Args[2:])
	case "equiv":
		err = cmdEquiv(os.Args[2:])
	case "repl":
		err = cmdRepl(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "existdlog:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: existdlog <command> [flags] [file]

commands:
  optimize   print the optimization pipeline report for a program
  adorn      print the existentially adorned program
  run        evaluate a program over its facts and print the answers
  explain    print the optimizer's stage-by-stage EXPLAIN report
  why        print the derivation tree of one answer
  grammar    analyze a binary chain program as a grammar
  equiv      compare two programs under the paper's equivalences
  repl       interactive session (rules, facts, ?- queries; -server connects :add/:retract to a served instance)
  bench      run the experiment suite and print its tables
  serve      HTTP query service: /query, /update, /retract, /metrics, /healthz, /debug/pprof (-wal makes writes durable)
  loadgen    open-loop traffic generator + SLO harness against a served instance; writes BENCH_<scenario>.json
`)
}

func load(path string) (*existdlog.Program, *existdlog.Database, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return existdlog.Parse(string(src))
}

func cmdOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	mode := fs.String("mode", "53", "summary deletion mode: 51 or 53")
	magicFlag := fs.Bool("magic", false, "finish with the magic-sets rewriting")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("optimize: expected one program file")
	}
	prog, _, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	opts := existdlog.DefaultOptions()
	if *mode == "51" {
		opts.DeletionMode = existdlog.Lemma51
	}
	opts.MagicSets = *magicFlag
	res, err := existdlog.Optimize(prog, opts)
	if err != nil {
		return err
	}
	fmt.Println("== input ==")
	fmt.Print(prog.String())
	for _, s := range res.Steps {
		fmt.Printf("\n== after %s ==\n", s.Name)
		for _, n := range s.Notes {
			fmt.Printf("%% %s\n", n)
		}
		fmt.Print(s.Program)
	}
	if len(res.Deletions) > 0 {
		fmt.Println("\n== deletions ==")
		for _, d := range res.Deletions {
			fmt.Printf("- %s\n    %s\n", d.Rule, d.Reason)
		}
	}
	if res.EmptyAnswer {
		fmt.Println("\n== the answer is empty (proved at compile time) ==")
	}
	return nil
}

func cmdAdorn(args []string) error {
	fs := flag.NewFlagSet("adorn", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("adorn: expected one program file")
	}
	prog, _, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	ad, err := adorn.Adorn(prog)
	if err != nil {
		return err
	}
	fmt.Print(ad.String())
	return nil
}

// relFlags accumulates repeated -rel name=path.csv flags.
type relFlags []string

func (r *relFlags) String() string     { return strings.Join(*r, ",") }
func (r *relFlags) Set(v string) error { *r = append(*r, v); return nil }

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	noopt := fs.Bool("noopt", false, "evaluate the program as written")
	nocut := fs.Bool("nocut", false, "disable the runtime boolean cut")
	naive := fs.Bool("naive", false, "use naive instead of semi-naive evaluation")
	parallel := fs.Bool("parallel", false, "parallel semi-naive evaluation (same answers and stats, GOMAXPROCS workers)")
	reorder := fs.Bool("reorder", false, "greedy bound-first join reordering")
	explain := fs.Bool("explain", false, "print the optimizer's EXPLAIN report before the answers")
	traceFlag := fs.Bool("trace", false, "collect per-rule/per-pass metrics and print them after the stats")
	maxAnswers := fs.Int("max", 50, "print at most this many answers (0 = all)")
	timeout := fs.Duration("timeout", 0, "abort evaluation after this long, printing the partial result (0 = no limit)")
	var rels relFlags
	fs.Var(&rels, "rel", "load a relation from CSV: -rel name=path.csv (repeatable)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("run: expected one program file")
	}
	prog, db, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	for _, spec := range rels {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("run: -rel wants name=path.csv, got %q", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		n, err := db.LoadCSV(name, f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("%% loaded %d rows into %s from %s\n", n, name, path)
	}
	if prog.Query.Pred == "" {
		return fmt.Errorf("run: the program has no ?- query")
	}
	goal := prog.Query
	if !*noopt {
		res, err := existdlog.Optimize(prog, existdlog.DefaultOptions())
		if err != nil {
			return err
		}
		if *explain {
			res.Explain.Format(os.Stdout)
		}
		prog = res.Program
		goal = prog.Query
		if res.EmptyAnswer {
			fmt.Println("answer proved empty at compile time")
			return nil
		}
	} else if *explain {
		fmt.Println("% -explain has no report under -noopt (the optimizer did not run)")
	}
	if *explain && *reorder {
		if err := printPlanPreview(prog, db); err != nil {
			return err
		}
	}
	opts := existdlog.EvalOptions{BooleanCut: !*nocut, ReorderJoins: *reorder, Trace: *traceFlag}
	if *naive && *parallel {
		return fmt.Errorf("run: -naive and -parallel are mutually exclusive")
	}
	if *naive {
		opts.Strategy = existdlog.Naive
	}
	if *parallel {
		opts.Strategy = existdlog.Parallel
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := existdlog.EvalContext(ctx, prog, db, opts)
	if err != nil && (res == nil || !res.Partial) {
		return err
	}
	answers := res.Answers(goal)
	for i, row := range answers {
		if *maxAnswers > 0 && i >= *maxAnswers {
			fmt.Printf("... and %d more\n", len(answers)-i)
			break
		}
		fmt.Printf("%s(%s)\n", goal.Key(), strings.Join(row, ","))
	}
	if err != nil {
		// Graceful degradation: a timed-out (or limit-hit) query prints
		// whatever was soundly derived, marked as partial, and exits 0.
		fmt.Printf("%%%% partial result (%s)\n", res.Incomplete)
	}
	s := res.Stats
	fmt.Printf("%% %d answers; %d facts derived in %d iterations; %d derivations (%d duplicates); %d join probes; %d rules retired\n",
		len(answers), s.FactsDerived, s.Iterations, s.Derivations, s.DuplicateHits, s.JoinProbes, s.RulesRetired)
	if res.Trace != nil {
		res.Trace.Format(os.Stdout)
	}
	return nil
}

// printPlanPreview renders the runtime join planner's startup-pass
// orders with the live relation cardinalities that justified them — the
// EXPLAIN view of -reorder. Delta (semi-naive) rule versions replan at
// every pass barrier; run with -reorder -trace to watch those.
func printPlanPreview(prog *existdlog.Program, db *existdlog.Database) error {
	orders, err := existdlog.PlanPreview(prog, db)
	if err != nil {
		return err
	}
	fmt.Println("== join planner (startup-pass orders from live cardinalities) ==")
	if len(orders) == 0 {
		fmt.Println("% no rules to plan")
		return nil
	}
	for i := range orders {
		fmt.Printf("%% %s\n", orders[i].String())
	}
	return nil
}

// cmdExplain prints the optimizer's stage-by-stage EXPLAIN report for a
// program: adornments chosen, boolean components split off, positions
// projected away, and which check deleted which rule. With a second
// argument (a ground goal) it keeps its historical meaning and delegates
// to "why", printing that answer's derivation tree. -plan appends the
// runtime join planner's chosen orders for the optimized program.
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	mode := fs.String("mode", "53", "summary deletion mode: 51 or 53")
	magicFlag := fs.Bool("magic", false, "finish with the magic-sets rewriting")
	plan := fs.Bool("plan", false, "append the runtime join planner's startup orders with their cardinalities (text output only)")
	fs.Parse(args)
	if fs.NArg() == 2 {
		return cmdWhy(fs.Args())
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("explain: expected one program file (or a file and a ground goal, as in 'why')")
	}
	prog, db, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	opts := existdlog.DefaultOptions()
	if *mode == "51" {
		opts.DeletionMode = existdlog.Lemma51
	}
	opts.MagicSets = *magicFlag
	res, err := existdlog.Optimize(prog, opts)
	if err != nil {
		return err
	}
	if *jsonOut {
		b, err := res.Explain.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}
	res.Explain.Format(os.Stdout)
	if *plan && !res.EmptyAnswer {
		return printPlanPreview(res.Program, db)
	}
	return nil
}

// cmdWhy evaluates the program with provenance tracking and prints the
// derivation tree of one ground answer, grounded in base facts.
func cmdWhy(args []string) error {
	fs := flag.NewFlagSet("why", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("why: expected a program file and a ground goal like 'a(1,2)'")
	}
	prog, db, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	res, err := existdlog.Eval(prog, db, existdlog.EvalOptions{TrackProvenance: true})
	if err != nil {
		return err
	}
	tree, err := existdlog.Why(res, fs.Arg(1))
	if errors.Is(err, existdlog.ErrNotDerivable) {
		fmt.Printf("%s is not derivable\n", fs.Arg(1))
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Print(existdlog.FormatTree(tree, prog, res))
	return nil
}

func cmdGrammar(args []string) error {
	fs := flag.NewFlagSet("grammar", flag.ExitOnError)
	maxLen := fs.Int("len", 5, "enumerate languages up to this length")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("grammar: expected one program file")
	}
	prog, _, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	g, err := grammar.FromChainProgram(prog)
	if err != nil {
		return err
	}
	fmt.Printf("start symbol: %s\n", g.Start)
	fmt.Printf("classification: %v\n", classString(grammar.Classify(g)))
	fmt.Printf("L(G) up to length %d:\n", *maxLen)
	for _, s := range g.Language(*maxLen) {
		fmt.Printf("  %s\n", strings.Join(s, " "))
	}
	fmt.Printf("extended language up to length %d:\n", *maxLen)
	for _, s := range g.ExtendedLanguage(*maxLen) {
		fmt.Printf("  %s\n", strings.Join(s, " "))
	}
	for _, ad := range []existdlog.Adornment{"dn", "nd"} {
		mp, err := grammar.MonadicFromChain(prog, ad)
		if err != nil {
			fmt.Printf("monadic construction (%s): %v\n", ad, err)
			continue
		}
		fmt.Printf("monadic program for query %s@%s (Theorem 3.3):\n", g.Start, ad)
		fmt.Print(indentLines(mp.Program.String(), "  "))
	}
	return nil
}

func classString(c grammar.Linearity) string {
	switch c {
	case grammar.RightLinear:
		return "right-linear (regular)"
	case grammar.LeftLinear:
		return "left-linear (regular)"
	case grammar.Acyclic:
		return "acyclic (trivially regular)"
	default:
		return "not linear (regularity undecidable)"
	}
}

func indentLines(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

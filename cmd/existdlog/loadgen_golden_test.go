package main

import (
	"bytes"
	"testing"
	"time"

	"existdlog/internal/harness"
	"existdlog/internal/workload"
)

// goldenLoadReport builds a fully deterministic report: a seeded trace,
// synthetic latencies/outcomes that are a pure function of the request
// index, an injected git rev, and a fixed clock. Everything the live
// path leaves to the environment is pinned here, so the BENCH json and
// the summary table can be byte-matched against committed goldens.
// Regenerate with: go test ./cmd/existdlog -run TestLoadgenGolden -update
func goldenLoadReport(t *testing.T) *harness.LoadReport {
	t.Helper()
	tr := workload.Scenarios["mixed"].Generate(7, 4*time.Second, 0)
	samples := make([]harness.LoadSample, len(tr.Requests))
	for i, req := range tr.Requests {
		outcome := "ok"
		switch {
		case i%29 == 11:
			outcome = "error"
		case i%19 == 4:
			outcome = "partial"
		}
		samples[i] = harness.LoadSample{
			Class:   req.Class,
			Latency: time.Duration(i%23+1) * 700 * time.Microsecond,
			Outcome: outcome,
		}
	}
	slo, err := harness.ParseSLO("p99=50ms,errors=10,partials=0")
	if err != nil {
		t.Fatal(err)
	}
	return harness.BuildLoadReport(tr, samples, 4*time.Second, "deadbeefcafe", time.Unix(1754500000, 0).UTC(), slo)
}

func TestLoadgenGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := harness.WriteLoadJSON(&buf, goldenLoadReport(t)); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "loadgen_bench.json", buf.String())
}

func TestLoadgenGoldenTable(t *testing.T) {
	var buf bytes.Buffer
	harness.WriteLoadTable(&buf, goldenLoadReport(t))
	goldenCompare(t, "loadgen_table.txt", buf.String())
}

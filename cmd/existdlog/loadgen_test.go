package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"existdlog/internal/harness"
	"existdlog/internal/leakcheck"
	"existdlog/internal/server"
	"existdlog/internal/workload"
)

// e2eScenario is a miniature scenario so the end-to-end run finishes in
// tens of milliseconds: a 20-node chain, a dense sub-second schedule,
// every cohort populated.
var e2eScenario = workload.Scenario{
	Name:    "e2e",
	Nodes:   20,
	Periods: []workload.Period{{Rate: 800, Duration: 60 * time.Millisecond}},
	Mix:     workload.Mix{Point: 0.5, Recursive: 0.2, Boolean: 0.2, MutationRatio: 0.2},
}

// countingHandler wraps the server handler, counting hits per path so
// the test can prove every scheduled request was issued exactly once.
type countingHandler struct {
	inner   http.Handler
	query   atomic.Int64
	update  atomic.Int64
	retract atomic.Int64
}

func (c *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/query":
		c.query.Add(1)
	case "/update":
		c.update.Add(1)
	case "/retract":
		c.retract.Add(1)
	}
	c.inner.ServeHTTP(w, r)
}

// TestLoadgenEndToEnd drives a real server.Server through the open-loop
// runner with a fixed small trace and checks the books balance: every
// scheduled request is issued exactly once (counted at the handler),
// the report counters partition issued = ok + error + partial, and the
// server plus runner leak no goroutines on shutdown. CI runs this under
// -race, which is where the per-index sample writes and the concurrent
// client pool earn their keep.
func TestLoadgenEndToEnd(t *testing.T) {
	defer leakcheck.Check(t)()

	srv, err := server.New(server.Config{Source: e2eScenario.Program(), Name: "e2e"})
	if err != nil {
		t.Fatal(err)
	}
	counter := &countingHandler{inner: srv.Handler()}
	hs := httptest.NewServer(counter)

	tr := e2eScenario.Generate(3, 0, 0)
	// One deterministic error: an arity-mismatched goal the server
	// rejects with a 400, so the error bucket is provably wired.
	tr.Requests = append(tr.Requests, workload.Request{
		Offset: 61 * time.Millisecond, Class: workload.ClassPoint, Goal: "tc(X)",
	})

	client := server.NewClient(hs.URL)
	samples, elapsed := runTrace(context.Background(), client, tr, workload.RealClock{}, 5*time.Second)

	rep := harness.BuildLoadReport(tr, samples, elapsed, "testrev", time.Now(), nil)
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}

	scheduled := len(tr.Requests)
	if rep.Results.Issued != scheduled || rep.Results.Skipped != 0 {
		t.Fatalf("issued %d, skipped %d, want all %d issued", rep.Results.Issued, rep.Results.Skipped, scheduled)
	}
	if got := rep.Results.OK + rep.Results.Partial + rep.Results.Errors; got != rep.Results.Issued {
		t.Fatalf("outcomes %d do not partition issued %d", got, rep.Results.Issued)
	}
	if rep.Results.Errors != 1 {
		t.Errorf("want exactly the injected arity error, got %d errors", rep.Results.Errors)
	}

	// Handler-side counts: each scheduled request hit its endpoint once.
	var wantQuery, wantUpdate, wantRetract int64
	for _, r := range tr.Requests {
		switch r.Class {
		case workload.ClassUpdate:
			wantUpdate++
		case workload.ClassRetract:
			wantRetract++
		default:
			wantQuery++
		}
	}
	if counter.query.Load() != wantQuery || counter.update.Load() != wantUpdate || counter.retract.Load() != wantRetract {
		t.Errorf("handler hits (q %d, u %d, r %d) != scheduled (q %d, u %d, r %d)",
			counter.query.Load(), counter.update.Load(), counter.retract.Load(),
			wantQuery, wantUpdate, wantRetract)
	}

	// Shutdown: drain, close, and let leakcheck verify nothing survives.
	hs.Close()
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadgenCancellation cancels mid-run: dispatching stops, the
// remainder is counted as skipped (never issued), issued + skipped
// covers the schedule, and nothing leaks.
func TestLoadgenCancellation(t *testing.T) {
	defer leakcheck.Check(t)()

	srv, err := server.New(server.Config{Source: e2eScenario.Program(), Name: "e2e"})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())

	sc := e2eScenario
	sc.Periods = []workload.Period{{Rate: 200, Duration: 5 * time.Second}}
	tr := sc.Generate(4, 0, 0)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	samples, elapsed := runTrace(ctx, hsClient(hs), tr, workload.RealClock{}, time.Second)

	rep := harness.BuildLoadReport(tr, samples, elapsed, "testrev", time.Now(), nil)
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	if rep.Results.Skipped == 0 {
		t.Error("expected skipped requests after cancellation")
	}
	if rep.Results.Issued+rep.Results.Skipped != len(tr.Requests) {
		t.Errorf("issued %d + skipped %d != scheduled %d",
			rep.Results.Issued, rep.Results.Skipped, len(tr.Requests))
	}

	hs.Close()
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func hsClient(hs *httptest.Server) *server.Client { return server.NewClient(hs.URL) }

// TestLoadgenScheduleStable is the acceptance invariant: two runs with
// the same seed emit byte-identical schedule blocks in BENCH json, even
// though their measured latencies differ.
func TestLoadgenScheduleStable(t *testing.T) {
	sc := workload.Scenarios["steady"]
	mk := func(latencyStep time.Duration) []byte {
		tr := sc.Generate(1, 5*time.Second, 0)
		samples := make([]harness.LoadSample, len(tr.Requests))
		for i, req := range tr.Requests {
			samples[i] = harness.LoadSample{Class: req.Class, Latency: time.Duration(i) * latencyStep, Outcome: "ok"}
		}
		rep := harness.BuildLoadReport(tr, samples, 5*time.Second, "r", time.Now(), nil)
		b, err := json.Marshal(rep.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := mk(time.Microsecond), mk(3*time.Microsecond)
	if string(a) != string(b) {
		t.Fatalf("schedule blocks differ across runs with the same seed:\n%s\nvs\n%s", a, b)
	}
}

// TestLoadgenCheckVerb round-trips a report file through the -check
// validator the CI job runs.
func TestLoadgenCheckVerb(t *testing.T) {
	tr := e2eScenario.Generate(5, 0, 0)
	samples := make([]harness.LoadSample, len(tr.Requests))
	for i, req := range tr.Requests {
		samples[i] = harness.LoadSample{Class: req.Class, Latency: time.Millisecond, Outcome: "ok"}
	}
	rep := harness.BuildLoadReport(tr, samples, time.Second, "r", time.Now(), nil)
	path := filepath.Join(t.TempDir(), "BENCH_e2e.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := harness.WriteLoadJSON(f, rep); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := capture(t, func() error { return checkReport(path) })
	if !strings.Contains(out, "valid "+harness.LoadReportSchema) {
		t.Errorf("check output: %s", out)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkReport(bad); err == nil {
		t.Error("checkReport accepted a foreign schema")
	}
}

// TestLoadgenRecordReplayCLI exercises the -record/-trace path at the
// command level: record a dry run, then replay the file and check the
// replayed schedule is the recorded one.
func TestLoadgenRecordReplayCLI(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	out := capture(t, func() error {
		return cmdLoadgen([]string{"-scenario", "mixed", "-seed", "11", "-duration", "2s", "-record", trace, "-dry"})
	})
	if !strings.Contains(out, "recorded ") || !strings.Contains(out, "dry run: ") {
		t.Fatalf("record output: %s", out)
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	got, err := workload.ReadTrace(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := workload.Scenarios["mixed"].Generate(11, 2*time.Second, 0)
	if got.Digest() != want.Digest() {
		t.Fatalf("recorded digest %s != generated %s", got.Digest(), want.Digest())
	}
	// Replay dry: the digest printed must match the recorded trace.
	out = capture(t, func() error {
		return cmdLoadgen([]string{"-trace", trace, "-dry"})
	})
	if !strings.Contains(out, want.Digest()) {
		t.Fatalf("replay dry run lost the schedule: %s", out)
	}
}

// TestLoadgenEmitProgram checks the -emit-program escape hatch prints a
// servable program.
func TestLoadgenEmitProgram(t *testing.T) {
	out := capture(t, func() error { return cmdLoadgen([]string{"-scenario", "steady", "-emit-program"}) })
	for _, want := range []string{"tc(X,Y) :- e(X,Y).", "?- tc(X,Y).", "e(0,1)."} {
		if !strings.Contains(out, want) {
			t.Errorf("emitted program missing %q", want)
		}
	}
}

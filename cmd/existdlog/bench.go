package main

import (
	"flag"
	"fmt"
	"os"

	"existdlog/internal/engine"
	"existdlog/internal/experiments"
	"existdlog/internal/harness"
)

// cmdBench runs the full experiment suite of EXPERIMENTS.md and prints
// each table plus the E12 capability matrix.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	only := fs.String("only", "", "run a single experiment id (e.g. E3)")
	parallel := fs.Bool("parallel", false, "evaluate semi-naive variants with the parallel strategy")
	fs.Parse(args)

	exps, err := experiments.All()
	if err != nil {
		return err
	}
	for _, e := range exps {
		if *only != "" && e.ID != *only {
			continue
		}
		if *parallel {
			// Upgrade every semi-naive variant; counters are unchanged by
			// construction, so the tables still verify, only timings move.
			for i := range e.Variants {
				if e.Variants[i].Opts.Strategy == engine.SemiNaive {
					e.Variants[i].Opts.Strategy = engine.Parallel
				}
			}
		}
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		fmt.Printf("claim: %s\n", e.Claim)
		rows, err := e.Run()
		if err != nil {
			return err
		}
		harness.WriteTable(os.Stdout, rows)
		if len(e.Variants) >= 2 {
			fmt.Println("speedups (first variant vs last):")
			fmt.Print(harness.Speedup(rows, e.Variants[0].Name, e.Variants[len(e.Variants)-1].Name))
		}
		fmt.Println()
	}
	if *only == "" || *only == "E12" {
		fmt.Println("== E12: deletion capability matrix (rules remaining per test) ==")
		mat, err := experiments.CapabilityMatrix()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatCapabilityMatrix(mat))
	}
	return nil
}

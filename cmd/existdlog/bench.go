package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"existdlog/internal/engine"
	"existdlog/internal/experiments"
	"existdlog/internal/harness"
)

// errReason names a cancellation/deadline abort for the bench footer.
func errReason(err error) string {
	if errors.Is(err, engine.ErrDeadline) {
		return "deadline exceeded"
	}
	return "canceled"
}

// cmdBench runs the full experiment suite of EXPERIMENTS.md and prints
// each table plus the E12 capability matrix.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	only := fs.String("only", "", "run a single experiment id (e.g. E3)")
	repeat := fs.Int("repeat", 1, "evaluate each cell this many times and report p50/p95/p99 latency quantiles")
	jsonOut := fs.String("json", "", "record the measured rows as a JSON array to this file (e.g. BENCH_E1.json)")
	parallel := fs.Bool("parallel", false, "evaluate semi-naive variants with the parallel strategy")
	timeout := fs.Duration("timeout", 0, "overall deadline for the suite; on expiry the partial tables are printed (0 = no limit)")
	cancelTable := fs.Bool("cancel", false, "measure the cancellation-latency table (DESIGN.md §7) instead of the experiment suite")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the suite to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile after the suite to this file")
	fs.Parse(args)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bench: memprofile:", err)
			}
		}()
	}

	if *cancelTable {
		fmt.Println("== cancellation latency: time from deadline expiry to partial result ==")
		rows, err := experiments.CancellationLatency([]time.Duration{
			time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatCancellationTable(rows))
		return nil
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	exps, err := experiments.All()
	if err != nil {
		return err
	}
	var allRows []harness.Row
	recordJSON := func() error {
		if *jsonOut == "" {
			return nil
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		return harness.WriteJSON(f, allRows)
	}
	for _, e := range exps {
		if *only != "" && e.ID != *only {
			continue
		}
		if *parallel {
			// Upgrade every semi-naive variant; counters are unchanged by
			// construction, so the tables still verify, only timings move.
			for i := range e.Variants {
				if e.Variants[i].Opts.Strategy == engine.SemiNaive {
					e.Variants[i].Opts.Strategy = engine.Parallel
				}
			}
		}
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		fmt.Printf("claim: %s\n", e.Claim)
		rows, err := e.RunRepeatContext(ctx, *repeat)
		aborted := err != nil && (errors.Is(err, engine.ErrCanceled) || errors.Is(err, engine.ErrDeadline))
		if err != nil && !aborted {
			return err
		}
		allRows = append(allRows, rows...)
		harness.WriteTable(os.Stdout, rows)
		if aborted {
			fmt.Printf("%%%% bench aborted mid-suite: %s\n", errReason(err))
			return recordJSON()
		}
		if len(e.Variants) >= 2 {
			fmt.Println("speedups (first variant vs last):")
			fmt.Print(harness.Speedup(rows, e.Variants[0].Name, e.Variants[len(e.Variants)-1].Name))
		}
		fmt.Println()
	}
	if *only == "" || *only == "E12" {
		fmt.Println("== E12: deletion capability matrix (rules remaining per test) ==")
		mat, err := experiments.CapabilityMatrix()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatCapabilityMatrix(mat))
	}
	return recordJSON()
}

package main

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"existdlog/internal/server"
)

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

func TestCmdRun(t *testing.T) {
	out := capture(t, func() error { return cmdRun([]string{"testdata/example1.dl"}) })
	for _, want := range []string{"query@n(1)", "query@n(2)", "query@n(3)", "answers"} {
		if !strings.Contains(out, want) {
			t.Errorf("run output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "query@n(4)") {
		t.Errorf("node 4 has no outgoing edge:\n%s", out)
	}
}

func TestCmdRunNoopt(t *testing.T) {
	out := capture(t, func() error { return cmdRun([]string{"-noopt", "testdata/example1.dl"}) })
	if !strings.Contains(out, "query(1)") {
		t.Errorf("unoptimized run output:\n%s", out)
	}
}

func TestCmdRunEmptyAnswer(t *testing.T) {
	out := capture(t, func() error { return cmdRun([]string{"testdata/empty.dl"}) })
	if !strings.Contains(out, "proved empty at compile time") {
		t.Errorf("empty.dl output:\n%s", out)
	}
}

func TestCmdOptimize(t *testing.T) {
	out := capture(t, func() error { return cmdOptimize([]string{"testdata/example1.dl"}) })
	for _, want := range []string{"== input ==", "after adorn", "after push-projections", "a@nd(X)", "deletions"} {
		if !strings.Contains(out, want) {
			t.Errorf("optimize output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdAdorn(t *testing.T) {
	out := capture(t, func() error { return cmdAdorn([]string{"testdata/example1.dl"}) })
	if !strings.Contains(out, "a@nd(X,Y)") {
		t.Errorf("adorn output:\n%s", out)
	}
}

func TestCmdExplain(t *testing.T) {
	out := capture(t, func() error { return cmdExplain([]string{"testdata/example1.dl", "a(1,3)"}) })
	if !strings.Contains(out, "a(1,3)") || !strings.Contains(out, "[base fact]") {
		t.Errorf("explain output:\n%s", out)
	}
	out = capture(t, func() error { return cmdExplain([]string{"testdata/example1.dl", "a(3,1)"}) })
	if !strings.Contains(out, "not derivable") {
		t.Errorf("explain of underivable fact:\n%s", out)
	}
}

func TestCmdGrammar(t *testing.T) {
	out := capture(t, func() error { return cmdGrammar([]string{"testdata/chain.dl"}) })
	for _, want := range []string{"right-linear", "L(G)", "monadic program"} {
		if !strings.Contains(out, want) {
			t.Errorf("grammar output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdBenchSingle(t *testing.T) {
	if testing.Short() {
		t.Skip("bench tables take seconds")
	}
	out := capture(t, func() error { return cmdBench([]string{"-only", "E4"}) })
	if !strings.Contains(out, "E4") || !strings.Contains(out, "speedups") {
		t.Errorf("bench output:\n%s", out)
	}
}

func TestCmdErrors(t *testing.T) {
	if err := cmdRun([]string{"testdata/missing.dl"}); err == nil {
		t.Error("missing file should error")
	}
	if err := cmdOptimize([]string{}); err == nil {
		t.Error("missing argument should error")
	}
	if err := cmdExplain([]string{"testdata/example1.dl", "a(X,3)"}); err == nil {
		t.Error("non-ground goal should error")
	}
}

func TestCmdEquiv(t *testing.T) {
	out := capture(t, func() error {
		return cmdEquiv([]string{"testdata/leftlinear.dl", "testdata/rightlinear.dl"})
	})
	if !strings.Contains(out, "uniform equivalence (decidable, Sagiv):      false") {
		t.Errorf("equiv output:\n%s", out)
	}
	if !strings.Contains(out, "uniform query equivalence") {
		t.Errorf("equiv output:\n%s", out)
	}
	out = capture(t, func() error {
		return cmdEquiv([]string{"testdata/rightlinear.dl", "testdata/rightlinear.dl"})
	})
	if !strings.Contains(out, "query equivalence (exact, regular fragment): true") {
		t.Errorf("self-equivalence output:\n%s", out)
	}
}

func TestCmdRunCSV(t *testing.T) {
	out := capture(t, func() error {
		return cmdRun([]string{"-rel", "e=testdata/edges.csv", "testdata/csvquery.dl"})
	})
	for _, want := range []string{"loaded 3 rows", "reach@n(n1)", "reach@n(n3)"} {
		if !strings.Contains(out, want) {
			t.Errorf("csv run missing %q:\n%s", want, out)
		}
	}
	if err := cmdRun([]string{"-rel", "broken", "testdata/csvquery.dl"}); err == nil {
		t.Error("malformed -rel should error")
	}
}

func TestReplSession(t *testing.T) {
	var out strings.Builder
	sess := &replSession{out: &out, optimize: true}
	script := []string{
		"a(X,Y) :- p(X,Z), a(Z,Y).",
		"a(X,Y) :- p(X,Y).",
		"p(1,2). p(2,3).",
		"?- a(1,X).",
		":rules",
		":facts",
		":optimize",
		"bogus line without dot",
		":nope",
	}
	for _, line := range script {
		if err := sess.handle(line); err != nil && !strings.Contains(err.Error(), "clauses end") &&
			!strings.Contains(err.Error(), "unknown command") {
			t.Fatalf("%q: %v", line, err)
		}
	}
	got := out.String()
	for _, want := range []string{"a@nn(1,2)", "a@nn(1,3)", "2 answers", "a(X,Y) :- p(X,Z), a(Z,Y)."} {
		if !strings.Contains(got, want) {
			t.Errorf("repl output missing %q:\n%s", want, got)
		}
	}
	if err := sess.handle(":quit"); err != errReplQuit {
		t.Errorf("quit returned %v", err)
	}
	// Streamed run with a reader.
	var out2 strings.Builder
	sess2 := &replSession{out: &out2, optimize: true}
	in := strings.NewReader("e(a,b).\nr(X,Y) :- e(X,Y).\n?- r(X,Y).\n:quit\n")
	if err := sess2.run(in); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.String(), "r@nn(a,b)") && !strings.Contains(out2.String(), "r(a,b)") {
		t.Errorf("streamed repl output:\n%s", out2.String())
	}
}

// TestCmdRunParallelMatchesSequential is the golden CLI check for the
// parallel evaluator: on every testdata program, `run -parallel` must
// byte-match the sequential output — answers, their order, and the stats
// line (the deterministic merge makes Stats identical, not just the
// fixpoint). Checked both through the optimizer pipeline and with -noopt.
func TestCmdRunParallelMatchesSequential(t *testing.T) {
	files, err := filepath.Glob("testdata/*.dl")
	if err != nil || len(files) == 0 {
		t.Fatalf("globbing testdata: %v (%d files)", err, len(files))
	}
	for _, file := range files {
		for _, noopt := range []bool{false, true} {
			name := filepath.Base(file)
			if noopt {
				name += "/noopt"
			}
			t.Run(name, func(t *testing.T) {
				var base []string
				if noopt {
					base = append(base, "-noopt")
				}
				if filepath.Base(file) == "csvquery.dl" {
					base = append(base, "-rel", "e=testdata/edges.csv")
				}
				seq := capture(t, func() error { return cmdRun(append(base, file)) })
				par := capture(t, func() error {
					return cmdRun(append(append([]string{"-parallel"}, base...), file))
				})
				if par != seq {
					t.Errorf("parallel output diverges from sequential\nsequential:\n%s\nparallel:\n%s", seq, par)
				}
			})
		}
	}
	if err := cmdRun([]string{"-naive", "-parallel", "testdata/example1.dl"}); err == nil {
		t.Error("-naive -parallel together should error")
	}
}

func TestReplLoadFile(t *testing.T) {
	var out strings.Builder
	sess := &replSession{out: &out, optimize: true}
	if err := sess.loadFile("testdata/example1.dl"); err != nil {
		t.Fatal(err)
	}
	if err := sess.handle("?- query(X)."); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "3 answers") {
		t.Errorf("load+query output:\n%s", out.String())
	}
}

// TestReplMutations drives :add and :retract both locally (editing the
// accumulated program) and connected to a served instance with -server
// semantics (posting to /update and /retract).
func TestReplMutations(t *testing.T) {
	// Local: mutations edit the session program in place.
	var out strings.Builder
	sess := &replSession{out: &out, optimize: true}
	for _, line := range []string{
		"a(X,Y) :- p(X,Y).",
		"a(X,Y) :- p(X,Z), a(Z,Y).",
		"p(1,2).",
		":add p(2,3)",
		"?- a(1,X).",
		":retract p(2,3).",
		"?- a(1,X).",
	} {
		if err := sess.handle(line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	got := out.String()
	if !strings.Contains(got, "2 answers") || !strings.Contains(got, "1 answers") {
		t.Errorf("local :add/:retract did not change query results:\n%s", got)
	}
	if err := sess.handle(":retract p(9,9)."); err == nil || !strings.Contains(err.Error(), "not present") {
		t.Errorf("retracting an absent fact: err=%v", err)
	}
	if err := sess.handle(":add a(X,Y) :- p(X,Y)."); err == nil || !strings.Contains(err.Error(), "ground fact") {
		t.Errorf("adding a rule via :add: err=%v", err)
	}

	// Served: the same commands post to a live instance's mutation
	// endpoints and print the acknowledged sequence numbers.
	srv, err := server.New(server.Config{
		Source: "a(X,Y) :- p(X,Y).\na(X,Y) :- p(X,Z), a(Z,Y).\np(1,2).\n?- a(1,X).",
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out2 strings.Builder
	sess2 := &replSession{out: &out2, optimize: true, server: ts.URL}
	if err := sess2.handle(":add p(2,3)"); err != nil {
		t.Fatal(err)
	}
	if err := sess2.handle(":retract p(1,2)."); err != nil {
		t.Fatal(err)
	}
	got2 := out2.String()
	if !strings.Contains(got2, "update acknowledged at seq 1") ||
		!strings.Contains(got2, "retract acknowledged at seq 2") {
		t.Errorf("served :add/:retract acks:\n%s", got2)
	}
	if err := sess2.handle(":add a(5,6)"); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("adding a derived fact against the server: err=%v", err)
	}
	// The served program now has p(2,3) only: a(2,3) is the single answer.
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"goal":"?- a(X,Y)."}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"count": 1`) || !strings.Contains(string(body), `"2"`) || !strings.Contains(string(body), `"3"`) {
		t.Errorf("served query after mutations: %s", body)
	}
}

package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"existdlog"
	"existdlog/internal/obs"
	"existdlog/internal/parser"
	"existdlog/internal/server"
)

// cmdRepl runs an interactive session: rules and facts accumulate, and
// each "?- goal." is optimized and evaluated on the spot. Ctrl-C cancels
// an in-flight query (printing its partial result); when no query is
// running, a second Ctrl-C in a row exits.
func cmdRepl(args []string) error {
	fs := flag.NewFlagSet("repl", flag.ExitOnError)
	noopt := fs.Bool("noopt", false, "evaluate queries without optimizing")
	serverURL := fs.String("server", "", "base URL of a running `existdlog serve` instance; :add and :retract post to it")
	fs.Parse(args)
	sess := &replSession{out: os.Stdout, optimize: !*noopt, server: strings.TrimRight(*serverURL, "/")}
	for _, path := range fs.Args() {
		if err := sess.loadFile(path); err != nil {
			return err
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	go func() {
		armed := false
		for range sig {
			if sess.Interrupt() {
				armed = false // the Ctrl-C went to the query, not the repl
				continue
			}
			if armed {
				fmt.Fprintln(sess.out)
				os.Exit(0)
			}
			armed = true
			fmt.Fprintln(sess.out, "\n(press Ctrl-C again to exit)")
		}
	}()

	fmt.Fprintln(sess.out, "existdlog repl — rules and facts accumulate; '?- goal.' queries; Ctrl-C cancels a query; :help for commands")
	return sess.run(os.Stdin)
}

type replSession struct {
	out       io.Writer
	optimize  bool
	server    string // base URL of a served instance; "" = purely local
	rules     []string
	facts     []string
	factCount int // parsed facts (a line may hold several)
	lastGoal  string

	// lastProg/lastResult hold the evaluated (possibly optimized) program
	// and result of the last query, for the why command. Queries always
	// track provenance so why can reconstruct derivation trees.
	lastProg   *existdlog.Program
	lastResult *existdlog.EvalResult

	// reg accumulates session metrics across queries — the same
	// registry type that backs `existdlog serve`'s /metrics — printed
	// by the :stats command. Lazily created so zero-value sessions
	// (tests construct them directly) work.
	reg *obs.Registry

	mu          sync.Mutex
	cancelQuery context.CancelFunc // non-nil while a query is evaluating
}

// registry returns the session's metrics registry, creating it on first
// use.
func (s *replSession) registry() *obs.Registry {
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	return s.reg
}

// Interrupt cancels the in-flight query, if any, and reports whether
// there was one to cancel.
func (s *replSession) Interrupt() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancelQuery == nil {
		return false
	}
	s.cancelQuery()
	return true
}

func (s *replSession) setCancel(c context.CancelFunc) {
	s.mu.Lock()
	s.cancelQuery = c
	s.mu.Unlock()
}

func (s *replSession) run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	fmt.Fprint(s.out, "> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if err := s.handle(line); err != nil {
			if err == errReplQuit {
				return nil
			}
			fmt.Fprintln(s.out, "error:", err)
		}
		fmt.Fprint(s.out, "> ")
	}
	fmt.Fprintln(s.out)
	return sc.Err()
}

var errReplQuit = fmt.Errorf("quit")

func (s *replSession) handle(line string) error {
	switch {
	case line == "" || strings.HasPrefix(line, "%"):
		return nil
	case line == ":quit" || line == ":q":
		return errReplQuit
	case line == ":help":
		fmt.Fprint(s.out, `  p(X) :- q(X,Y).   add a rule
  q(1,2).           add a fact
  ?- p(X).          run a query (optimized unless -noopt)
  :add q(3,4).      assert a base fact — on the connected server with -server, else locally
  :retract q(1,2).  retract a base fact (the server also retracts what it alone supported)
  :load FILE        load rules and facts from a file
  :rules            list the current rules
  :facts            list the current facts
  :optimize         show the optimized program for the last query
  :stats            cumulative session metrics (queries, facts, firings, latency)
  why p(1,2)        derivation tree of a fact from the last query's result
  :clear            forget everything
  :quit             leave
`)
		return nil
	case line == ":rules":
		for _, r := range s.rules {
			fmt.Fprintln(s.out, r)
		}
		return nil
	case line == ":facts":
		for _, f := range s.facts {
			fmt.Fprintln(s.out, f)
		}
		return nil
	case line == ":clear":
		s.rules, s.facts, s.factCount = nil, nil, 0
		s.lastProg, s.lastResult, s.lastGoal = nil, nil, ""
		return nil
	case strings.HasPrefix(line, ":why "):
		return s.why(strings.TrimSpace(strings.TrimPrefix(line, ":why ")))
	case strings.HasPrefix(line, "why "):
		return s.why(strings.TrimSpace(strings.TrimPrefix(line, "why ")))
	case strings.HasPrefix(line, ":add "):
		return s.mutate("update", strings.TrimSpace(strings.TrimPrefix(line, ":add ")))
	case strings.HasPrefix(line, ":retract "):
		return s.mutate("retract", strings.TrimSpace(strings.TrimPrefix(line, ":retract ")))
	case strings.HasPrefix(line, ":load "):
		return s.loadFile(strings.TrimSpace(strings.TrimPrefix(line, ":load ")))
	case line == ":optimize":
		return s.showOptimized()
	case line == ":stats":
		return s.showStats()
	case strings.HasPrefix(line, ":"):
		return fmt.Errorf("unknown command %q (:help)", line)
	case strings.HasPrefix(line, "?-"):
		return s.query(line)
	default:
		return s.addClause(line)
	}
}

// mutate asserts or retracts one base fact. Connected to a served
// instance (-server), it posts to /update or /retract and reports the
// acknowledged sequence number — the fact is then durable if the server
// runs with -wal. Without a server it edits the local accumulated
// program, so the next query sees the change.
func (s *replSession) mutate(op, fact string) error {
	if !strings.HasSuffix(fact, ".") {
		fact += "."
	}
	res, err := parser.Parse(fact)
	if err != nil {
		return err
	}
	if len(res.Program.Rules) > 0 || len(res.Facts) != 1 {
		return fmt.Errorf("%s takes exactly one ground fact, e.g. q(1,2)", op)
	}
	if s.server != "" {
		return s.mutateServed(op, fact)
	}
	if op == "update" {
		return s.addClause(fact)
	}
	// Local retract: drop the matching stored line. Lines that bundle
	// several clauses only match when retracted verbatim.
	for i, f := range s.facts {
		if f == fact {
			s.facts = append(s.facts[:i], s.facts[i+1:]...)
			s.factCount--
			return nil
		}
	}
	return fmt.Errorf("fact %s not present", strings.TrimSuffix(fact, "."))
}

// mutateServed posts the fact through the shared server client (the
// same one the loadgen verb drives traffic with) and prints the
// acknowledged sequence number.
func (s *replSession) mutateServed(op, fact string) error {
	res, err := server.NewClient(s.server).Mutate(context.Background(), op, []string{fact}, 0)
	if err != nil {
		return err
	}
	if res.Err != "" {
		return fmt.Errorf("%s: HTTP %d: %s", op, res.Status, res.Err)
	}
	fmt.Fprintf(s.out, "%% %s acknowledged at seq %d\n", op, res.Seq)
	return nil
}

func (s *replSession) loadFile(path string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if strings.HasPrefix(line, "?-") {
			continue // stored queries are not replayed
		}
		if err := s.addClause(line); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	fmt.Fprintf(s.out, "loaded %s (%d rules, %d facts)\n", path, len(s.rules), len(s.facts))
	return nil
}

// addClause validates a single rule or fact against the accumulated
// program before admitting it.
func (s *replSession) addClause(line string) error {
	if !strings.HasSuffix(line, ".") {
		return fmt.Errorf("clauses end with '.'")
	}
	all := strings.Join(s.rules, "\n") + "\n" + strings.Join(s.facts, "\n") + "\n" + line
	res, err := parser.Parse(all)
	if err != nil {
		return err
	}
	// Classify the admitted line by whether the parsed fact count grew (a
	// line may carry several clauses).
	if len(res.Facts) > s.factCount {
		s.facts = append(s.facts, line)
	} else {
		s.rules = append(s.rules, line)
	}
	s.factCount = len(res.Facts)
	return nil
}

func (s *replSession) program(goal string) (*existdlog.Program, *existdlog.Database, error) {
	src := strings.Join(s.rules, "\n") + "\n" + strings.Join(s.facts, "\n") + "\n" + goal + "\n"
	return existdlog.Parse(src)
}

func (s *replSession) query(goal string) error {
	if !strings.HasSuffix(goal, ".") {
		goal += "."
	}
	start := time.Now()
	s.lastGoal = goal
	prog, db, err := s.program(goal)
	if err != nil {
		s.registry().ObserveError(time.Since(start), "")
		return err
	}
	target := prog
	if s.optimize {
		res, err := existdlog.Optimize(prog, existdlog.DefaultOptions())
		if err != nil {
			s.registry().ObserveError(time.Since(start), "")
			return err
		}
		if res.EmptyAnswer {
			s.registry().ObserveQuery(existdlog.Stats{}, nil, time.Since(start), obs.OutcomeOK, "")
			fmt.Fprintln(s.out, "no (proved empty at compile time)")
			return nil
		}
		target = res.Program
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.setCancel(cancel)
	defer func() {
		s.setCancel(nil)
		cancel()
	}()
	res, err := existdlog.EvalContext(ctx, target, db,
		existdlog.EvalOptions{BooleanCut: true, TrackProvenance: true, Trace: true})
	interrupted := false
	if err != nil {
		if !errors.Is(err, existdlog.ErrCanceled) || res == nil || !res.Partial {
			s.registry().ObserveError(time.Since(start), "")
			return err
		}
		interrupted = true
	}
	outcome := obs.OutcomeOK
	if res.Partial {
		outcome = obs.OutcomePartial
	}
	s.registry().ObserveQuery(res.Stats, res.Trace, time.Since(start), outcome, "")
	s.lastProg, s.lastResult = target, res
	answers := res.Answers(target.Query)
	if len(answers) == 0 && !interrupted {
		fmt.Fprintln(s.out, "no")
		return nil
	}
	for i, row := range answers {
		if i == 25 {
			fmt.Fprintf(s.out, "... and %d more\n", len(answers)-i)
			break
		}
		if len(row) == 0 {
			fmt.Fprintln(s.out, "yes")
		} else {
			fmt.Fprintf(s.out, "%s(%s)\n", target.Query.Key(), strings.Join(row, ","))
		}
	}
	if interrupted {
		fmt.Fprintf(s.out, "%%%% interrupted — partial result: %d answers so far, %d facts derived, %d iterations\n",
			len(answers), res.Stats.FactsDerived, res.Stats.Iterations)
		return nil
	}
	fmt.Fprintf(s.out, "%% %d answers, %d facts derived, %d iterations\n",
		len(answers), res.Stats.FactsDerived, res.Stats.Iterations)
	return nil
}

// why prints the derivation tree of a ground fact from the last query's
// result. Under optimization the evaluated program is the optimized one,
// so derived facts are named by their adorned keys (e.g. "a@nd(1)"); the
// tree's leaves are always base facts.
func (s *replSession) why(fact string) error {
	if s.lastResult == nil {
		return fmt.Errorf("no query result yet — run a '?- goal.' query first")
	}
	tree, err := existdlog.Why(s.lastResult, fact)
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, existdlog.FormatTree(tree, s.lastProg, s.lastResult))
	return nil
}

// showStats prints the session's cumulative metrics. Every query since
// startup drains into the same obs registry type that backs `existdlog
// serve`'s /metrics; the registry is session-lifetime, so :clear does
// not reset it.
func (s *replSession) showStats() error {
	snap := s.registry().Snapshot()
	fmt.Fprintf(s.out, "queries: %d (ok %d, partial %d, error %d)\n",
		snap.TotalQueries(), snap.Queries[obs.OutcomeOK],
		snap.Queries[obs.OutcomePartial], snap.Queries[obs.OutcomeError])
	fmt.Fprintf(s.out, "facts derived: %d; rule firings: %d; derivations: %d (%d duplicates); join probes: %d; passes: %d; rules retired: %d\n",
		snap.FactsDerived, snap.RuleFirings, snap.Derivations,
		snap.DuplicateHits, snap.JoinProbes, snap.Iterations, snap.RulesRetired)
	if n := snap.Latency.Count; n > 0 {
		fmt.Fprintf(s.out, "latency: p50 %s, p95 %s, p99 %s over %d queries\n",
			snap.Latency.QuantileDuration(0.50),
			snap.Latency.QuantileDuration(0.95),
			snap.Latency.QuantileDuration(0.99), n)
	}
	if len(snap.Rules) > 0 {
		fmt.Fprintf(s.out, "%-8s %8s %8s %8s  %s\n", "firings", "emitted", "facts", "dup", "rule")
		for _, r := range snap.Rules {
			fmt.Fprintf(s.out, "%-8d %8d %8d %8d  %s\n",
				r.Firings, r.Emitted, r.Facts, r.Duplicates, r.Text)
		}
	}
	return nil
}

func (s *replSession) showOptimized() error {
	if s.lastGoal == "" {
		return fmt.Errorf("no query yet")
	}
	prog, _, err := s.program(s.lastGoal)
	if err != nil {
		return err
	}
	res, err := existdlog.Optimize(prog, existdlog.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, res.Program.String())
	return nil
}

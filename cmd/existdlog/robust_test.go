package main

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// divergentSrc counts forever through the succ builtin; only a timeout or
// an interrupt can end its evaluation. It lives in a temp dir, NOT in
// testdata/, which TestCmdRunParallelMatchesSequential globs exhaustively.
const divergentSrc = `
count(X) :- zero(X).
count(Y) :- count(X), succ(X,Y).
zero(0).
?- count(X).
`

func writeTempProgram(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.dl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCmdRunTimeoutPrintsPartial: run -timeout on a divergent program must
// exit 0 with the partial answers and the partial-result notice before the
// stats line.
func TestCmdRunTimeoutPrintsPartial(t *testing.T) {
	path := writeTempProgram(t, divergentSrc)
	start := time.Now()
	out := capture(t, func() error {
		return cmdRun([]string{"-noopt", "-timeout", "50ms", "-max", "5", path})
	})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("run -timeout 50ms took %v", elapsed)
	}
	if !strings.Contains(out, "%% partial result (deadline exceeded)") {
		t.Fatalf("missing partial-result notice:\n%s", out)
	}
	if !strings.Contains(out, "count(0)") {
		t.Fatalf("partial output lacks the first derived answer:\n%s", out)
	}
	if !strings.Contains(out, "answers") {
		t.Fatalf("stats line missing:\n%s", out)
	}
	notice := strings.Index(out, "%% partial result")
	stats := strings.LastIndex(out, "% ")
	if notice > stats {
		t.Fatalf("partial notice should precede the stats line:\n%s", out)
	}
}

// TestCmdRunTimeoutUnusedIsHarmless: a generous -timeout on a terminating
// program changes nothing.
func TestCmdRunTimeoutUnusedIsHarmless(t *testing.T) {
	plain := capture(t, func() error { return cmdRun([]string{"testdata/example1.dl"}) })
	timed := capture(t, func() error { return cmdRun([]string{"-timeout", "1m", "testdata/example1.dl"}) })
	if plain != timed {
		t.Fatalf("-timeout 1m changed the output:\nplain:\n%s\ntimed:\n%s", plain, timed)
	}
}

// TestReplInterruptCancelsQuery drives a replSession the way the SIGINT
// handler does: a divergent query is started, Interrupt is fired
// mid-flight, and the session must print the partial result with the
// interrupted notice — and keep accepting input (the session survives).
func TestReplInterruptCancelsQuery(t *testing.T) {
	var out lockedBuffer
	sess := &replSession{out: &out, optimize: false}
	for _, line := range []string{
		"count(X) :- zero(X).",
		"count(Y) :- count(X), succ(X,Y).",
		"zero(0).",
	} {
		if err := sess.handle(line); err != nil {
			t.Fatalf("handle(%q): %v", line, err)
		}
	}

	done := make(chan error, 1)
	go func() { done <- sess.handle("?- count(X).") }()

	// Interrupt once the query is actually in flight.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if sess.Interrupt() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query never registered a cancel func")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("interrupted query returned error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("query did not return after Interrupt")
	}
	if got := out.String(); !strings.Contains(got, "interrupted — partial result") {
		t.Fatalf("missing interrupted notice:\n%s", got)
	}

	// No query in flight: Interrupt must report false (the repl's signal
	// handler then arms the exit path instead of swallowing the Ctrl-C).
	if sess.Interrupt() {
		t.Fatal("Interrupt claimed to cancel with no query running")
	}

	// The session still answers queries afterwards (the divergent rules
	// are cleared first — any query would re-run the whole program).
	out.Reset()
	if err := sess.handle(":clear"); err != nil {
		t.Fatal(err)
	}
	if err := sess.handle("zero(0)."); err != nil {
		t.Fatal(err)
	}
	if err := sess.handle("?- zero(X)."); err != nil {
		t.Fatalf("post-interrupt query: %v", err)
	}
	if got := out.String(); !strings.Contains(got, "zero(0)") {
		t.Fatalf("session did not survive the interrupt:\n%s", got)
	}
}

// lockedBuffer is a strings.Builder safe for the cross-goroutine writes
// the interrupt test performs.
type lockedBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func (b *lockedBuffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sb.Reset()
}

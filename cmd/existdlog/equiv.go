package main

import (
	"flag"
	"fmt"

	"existdlog"
	"existdlog/internal/grammar"
	"existdlog/internal/uniform"
)

// cmdEquiv compares two programs under the paper's notions of equivalence
// (Section 4): uniform equivalence (decidable, Sagiv), exact query
// equivalence for linear chain programs (Lemma 4.1 via DFA comparison),
// and the bounded language checks for everything else.
func cmdEquiv(args []string) error {
	fs := flag.NewFlagSet("equiv", flag.ExitOnError)
	maxLen := fs.Int("len", 8, "bound for the language-based checks")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("equiv: expected two program files")
	}
	p1, _, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	p2, _, err := load(fs.Arg(1))
	if err != nil {
		return err
	}

	ue, err := uniform.Equivalent(p1, p2)
	if err != nil {
		return err
	}
	fmt.Printf("uniform equivalence (decidable, Sagiv):      %v\n", ue)

	g1, err1 := grammar.FromChainProgram(p1)
	g2, err2 := grammar.FromChainProgram(p2)
	if err1 != nil || err2 != nil {
		fmt.Println("chain-program analysis: not applicable (not binary chain programs)")
		return nil
	}
	if qe, err := existdlog.ChainQueryEquivalent(p1, p2); err == nil {
		fmt.Printf("query equivalence (exact, regular fragment): %v\n", qe)
	} else {
		fmt.Printf("query equivalence (exact): %v\n", err)
		fmt.Printf("query equivalence (bounded, len<=%d):         %v\n",
			*maxLen, grammar.EqualUpTo(g1, g2, *maxLen))
	}
	fmt.Printf("DB equivalence (bounded, len<=%d):            %v\n",
		*maxLen, grammar.DBEqualUpTo(g1, g2, *maxLen))
	fmt.Printf("uniform query equivalence (bounded, len<=%d): %v\n",
		*maxLen, grammar.ExtendedEqualUpTo(g1, g2, *maxLen))
	return nil
}

// Command soundness is a randomized end-to-end soundness campaign for the
// optimizer: it generates random programs (recursion, argument flips,
// self-joins, disconnected guards, stratified negation), optimizes them
// with the full default pipeline, and compares answers against the
// unoptimized program over random databases. Any divergence is printed
// with a reproducer. Exit status 1 on failure.
//
//	go run ./cmd/soundness -trials 2000 -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"existdlog"
)

// Extended randomized soundness campaign: random programs (recursion,
// flips, self-joins, disconnected guards, negation in the query rule),
// random databases; optimized answers must match the original's on the
// needed column.
func main() {
	trialsFlag := flag.Int("trials", 500, "number of random programs to try")
	seed := flag.Int64("seed", 20260704, "random seed")
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))
	derived := []string{"d1", "d2", "d3"}
	base := []string{"e", "f"}
	fails := 0
	trials := *trialsFlag
	for trial := 0; trial < trials; trial++ {
		var sb strings.Builder
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			h := derived[rng.Intn(3)]
			switch rng.Intn(7) {
			case 0:
				fmt.Fprintf(&sb, "%s(X,Y) :- %s(X,Z), %s(Z,Y).\n", h, base[rng.Intn(2)], derived[rng.Intn(3)])
			case 1:
				fmt.Fprintf(&sb, "%s(X,Y) :- %s(X,Z), %s(Z,Y).\n", h, derived[rng.Intn(3)], base[rng.Intn(2)])
			case 2:
				fmt.Fprintf(&sb, "%s(X,Y) :- %s(Y,X).\n", h, derived[rng.Intn(3)])
			case 3:
				fmt.Fprintf(&sb, "%s(X,Y) :- %s(X,Y).\n", h, derived[rng.Intn(3)])
			case 4:
				fmt.Fprintf(&sb, "%s(X,X) :- %s(X,Y), %s(Y,X).\n", h, base[rng.Intn(2)], base[rng.Intn(2)])
			case 5:
				fmt.Fprintf(&sb, "%s(X,Y) :- %s(X,Y), %s(Y,W).\n", h, derived[rng.Intn(3)], base[rng.Intn(2)])
			case 6:
				fmt.Fprintf(&sb, "%s(X,Y) :- %s(X,Z), %s(Z,W), %s(W,Y).\n", h,
					base[rng.Intn(2)], derived[rng.Intn(3)], base[rng.Intn(2)])
			}
		}
		for _, d := range derived {
			fmt.Fprintf(&sb, "%s(X,Y) :- e(X,Y).\n", d)
		}
		switch rng.Intn(5) {
		case 0:
			sb.WriteString("query(X) :- d1(X,Y).\n")
		case 1:
			sb.WriteString("query(X) :- d1(X,Y), d2(Y,Z).\n")
		case 2:
			sb.WriteString("query(X) :- d1(X,Y), f(U,V).\n")
		case 3:
			sb.WriteString("query(X) :- d1(X,Y), not mark(X).\n")
		case 4:
			sb.WriteString("query(X) :- d1(X,Y), d2(X,Z), not mark(Z).\n")
		}
		sb.WriteString("?- query(X).\n")
		src := sb.String()
		prog, err := existdlog.ParseProgram(src)
		if err != nil {
			fmt.Println("PARSE FAIL:", err, "\n", src)
			fails++
			continue
		}
		res, err := existdlog.Optimize(prog, existdlog.DefaultOptions())
		if err != nil {
			fmt.Println("OPTIMIZE FAIL:", err, "\n", src)
			fails++
			continue
		}
		for round := 0; round < 3; round++ {
			db := existdlog.NewDatabase()
			m := 3 + rng.Intn(5)
			for i := 0; i < 2*m; i++ {
				db.Add("e", fmt.Sprint(rng.Intn(m)), fmt.Sprint(rng.Intn(m)))
				db.Add("f", fmt.Sprint(rng.Intn(m)), fmt.Sprint(rng.Intn(m)))
			}
			if rng.Intn(2) == 0 {
				db.Add("mark", fmt.Sprint(rng.Intn(m)))
			}
			before, err := existdlog.Eval(prog, db, existdlog.EvalOptions{})
			if err != nil {
				fmt.Println("EVAL FAIL:", err, "\n", src)
				fails++
				break
			}
			after, err := existdlog.Eval(res.Program, db, existdlog.EvalOptions{BooleanCut: true})
			if err != nil {
				fmt.Println("EVAL-OPT FAIL:", err, "\n", src)
				fails++
				break
			}
			a := before.Answers(prog.Query)
			b := after.Answers(res.Program.Query)
			sa := map[string]bool{}
			for _, r := range a {
				sa[r[0]] = true
			}
			sbm := map[string]bool{}
			for _, r := range b {
				sbm[r[0]] = true
			}
			if len(sa) != len(sbm) {
				fmt.Printf("MISMATCH trial %d round %d:\n%s\noptimized:\n%s\nbefore=%v after=%v\n",
					trial, round, src, res.Program, sa, sbm)
				fails++
				break
			}
			for k := range sa {
				if !sbm[k] {
					fmt.Printf("MISSING %s trial %d:\n%s\noptimized:\n%s\n", k, trial, src, res.Program)
					fails++
					break
				}
			}
		}
	}
	fmt.Printf("campaign complete: %d trials, %d failures\n", trials, fails)
	if fails > 0 {
		os.Exit(1)
	}
}

module existdlog

go 1.22
